//! Re-mining a persisted trace corpus without re-emulating.
//!
//! A campaign run with `--store` leaves behind a [`TraceStore`]: one
//! directory per seed holding the run's encoded lifecycle traces plus a
//! manifest. [`mine_store`] sweeps that corpus the same way
//! [`run_campaign`](crate::campaign::run_campaign) sweeps seeds — fanned
//! over a worker pool, aggregated sorted by seed — except each "run" is
//! a decode instead of an emulation. Detectors can thus be re-tuned and
//! rankings re-produced at a fraction of the original cost, and (because
//! the mining stage is the same code path the live campaign used) the
//! re-mined document is bit-identical to the live one.
//!
//! For corpora that took damage — a torn write, bit rot, a killed
//! recording — [`mine_store_with`] adds *quarantine-and-continue*: runs
//! whose manifest or traces fail corruption-class validation
//! ([`StoreError::is_corruption`]) are moved to the store's
//! `quarantine/` directory with a typed reason, the remaining runs are
//! mined normally, and the [`MineReport`] enumerates exactly what was
//! skipped and why. One bad run no longer costs the corpus.

use crate::campaign::{run_campaign, CampaignOptions, CampaignResult, RunOutcome};
use sentomist_trace::Trace;
use sentomist_tracestore::{seed_for_run_id, RunManifest, StoreError, TraceStore};
use std::sync::Mutex;

/// How a corpus should be mined.
#[derive(Debug, Clone, Copy, Default)]
pub struct MineOptions {
    /// Worker-pool options for the sweep itself.
    pub campaign: CampaignOptions,
    /// Quarantine-and-continue: move corruption-class failures to
    /// `quarantine/` instead of reporting them as run errors. Off, a
    /// corrupt run stays in place and lands in the error list (the
    /// historical behavior).
    pub quarantine: bool,
}

/// One run set aside by quarantine-and-continue mining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRun {
    /// The run directory name (now under `quarantine/`).
    pub run_id: String,
    /// The run's seed (parsed from the run id when the manifest itself
    /// was unreadable).
    pub seed: u64,
    /// The corruption that condemned it, rendered as text.
    pub reason: String,
}

/// What quarantine-aware mining produced: the campaign result over the
/// healthy runs, plus everything that was set aside.
#[derive(Debug, Clone, PartialEq)]
pub struct MineReport {
    /// Mining result over the runs that passed validation.
    pub result: CampaignResult,
    /// Runs moved to `quarantine/`, ascending by run id.
    pub quarantined: Vec<QuarantinedRun>,
}

/// Mines every run stored in `store` with `miner`, a function from the
/// run's seed and decoded traces (node order, digest-verified) to a
/// campaign outcome.
///
/// Store-level failures of a single run — unreadable manifest, corrupt or
/// tampered trace file — land in the result's `errors` list under that
/// run's seed, mirroring how a live campaign reports per-seed job
/// failures; they never panic and never abort the sweep.
///
/// # Errors
///
/// Only listing the corpus can fail the call itself ([`StoreError::Io`]);
/// everything per-run is reported in the [`CampaignResult`].
pub fn mine_store<F>(
    store: &TraceStore,
    options: CampaignOptions,
    miner: F,
) -> Result<CampaignResult, StoreError>
where
    F: Fn(u64, &[Trace]) -> Result<RunOutcome, String> + Send + Sync,
{
    mine_store_with(
        store,
        MineOptions {
            campaign: options,
            quarantine: false,
        },
        miner,
    )
    .map(|report| report.result)
}

/// [`mine_store`] with explicit [`MineOptions`] — in particular
/// quarantine-and-continue for damaged corpora.
///
/// With `quarantine` on, a run is set aside (moved to `quarantine/`,
/// reason recorded on disk and in the report) when its manifest is
/// missing/unparsable or its traces fail decode/digest validation with a
/// corruption-class error; environmental failures (I/O permission
/// errors, version skew) and miner failures still land in `errors`.
///
/// # Errors
///
/// Only listing the corpus or moving a condemned run can fail the call
/// itself; per-run problems are reported, never thrown.
pub fn mine_store_with<F>(
    store: &TraceStore,
    options: MineOptions,
    miner: F,
) -> Result<MineReport, StoreError>
where
    F: Fn(u64, &[Trace]) -> Result<RunOutcome, String> + Send + Sync,
{
    let mut quarantined: Vec<QuarantinedRun> = Vec::new();
    let mut manifests: Vec<RunManifest> = Vec::new();
    let mut manifest_errors: Vec<(u64, String)> = Vec::new();
    for run_id in store.run_ids()? {
        match store.manifest(&run_id) {
            Ok(manifest) => manifests.push(manifest),
            Err(e) if options.quarantine && e.is_corruption() => {
                let reason = e.to_string();
                store.quarantine_run(&run_id, &reason)?;
                quarantined.push(QuarantinedRun {
                    seed: seed_for_run_id(&run_id).unwrap_or(0),
                    run_id,
                    reason,
                });
            }
            Err(e) => {
                // Historical behavior: a bad manifest fails the listing.
                if !options.quarantine {
                    return Err(e);
                }
                manifest_errors.push((seed_for_run_id(&run_id).unwrap_or(0), e.to_string()));
            }
        }
    }
    let seeds: Vec<u64> = manifests.iter().map(|m| m.seed).collect();
    let by_seed = |seed: u64| -> &RunManifest {
        // seeds[i] comes from manifests[i]; the job only receives those.
        &manifests[seeds.iter().position(|&s| s == seed).expect("known seed")]
    };
    // Corruption found while loading traces, keyed by seed; quarantining
    // is deferred to after the sweep so workers never race on renames.
    let condemned: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let mut result = run_campaign(&seeds, options.campaign, |seed| {
        let manifest = by_seed(seed);
        let traces = match store.load_traces(manifest) {
            Ok(traces) => traces,
            Err(e) => {
                if options.quarantine && e.is_corruption() {
                    condemned
                        .lock()
                        .expect("condemned list lock")
                        .push((seed, e.to_string()));
                }
                return Err(e.to_string());
            }
        };
        miner(seed, &traces)
    });
    for (seed, message) in manifest_errors {
        result
            .errors
            .push(crate::campaign::RunError::new(seed, message));
    }
    result.errors.sort_by_key(|e| e.seed);
    let condemned = condemned.into_inner().expect("condemned list lock");
    for (seed, reason) in condemned {
        let manifest = by_seed(seed);
        store.quarantine_run(&manifest.run_id, &reason)?;
        // A quarantined run is skipped, not failed: drop its error entry.
        result.errors.retain(|e| e.seed != seed);
        quarantined.push(QuarantinedRun {
            run_id: manifest.run_id.clone(),
            seed,
            reason,
        });
    }
    quarantined.sort_by(|a, b| a.run_id.cmp(&b.run_id));
    Ok(MineReport {
        result,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Verdict;
    use sentomist_trace::TraceEvent;
    use std::path::PathBuf;
    use tinyvm::LifecycleItem;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sentomist-corpus-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trace_with(cycle: u64) -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    cycle,
                    item: LifecycleItem::Int(0),
                },
                TraceEvent {
                    cycle: cycle + 2,
                    item: LifecycleItem::Reti,
                },
            ],
            segments: vec![vec![1], vec![3], vec![0]],
            program_len: 1,
        }
    }

    fn outcome_from(seed: u64, traces: &[Trace]) -> Result<RunOutcome, String> {
        Ok(RunOutcome {
            seed,
            samples: traces.iter().map(|t| t.events.len()).sum(),
            symptoms: 0,
            buggy_ranks: vec![],
            verdict: Verdict::Clean,
            trace_digest: format!("{:016x}", traces[0].digest()),
            wall_time_ms: 0,
        })
    }

    #[test]
    fn mines_all_stored_runs_sorted_by_seed() {
        let root = tmpdir("sweep");
        let store = TraceStore::create(&root).unwrap();
        for seed in [9u64, 2, 5] {
            store
                .save_run(seed, "test", 0, &[trace_with(seed * 10)])
                .unwrap();
        }
        let result = mine_store(&store, CampaignOptions::default(), outcome_from).unwrap();
        assert!(result.errors.is_empty());
        let seeds: Vec<u64> = result.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, vec![2, 5, 9]);
        assert_eq!(result.outcomes[0].samples, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_run_becomes_a_run_error_not_a_panic() {
        let root = tmpdir("corrupt");
        let store = TraceStore::create(&root).unwrap();
        store.save_run(1, "test", 0, &[trace_with(4)]).unwrap();
        let manifest = store.save_run(2, "test", 0, &[trace_with(8)]).unwrap();
        // Truncate run 2's trace file mid-stream.
        let path = store
            .run_dir(&manifest.run_id)
            .join(&manifest.nodes[0].file);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let result = mine_store(&store, CampaignOptions::default(), outcome_from).unwrap();
        assert_eq!(result.outcomes.len(), 1);
        assert_eq!(result.outcomes[0].seed, 1);
        assert_eq!(result.errors.len(), 1);
        assert_eq!(result.errors[0].seed, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn quarantine_moves_corrupt_runs_and_mines_the_rest() {
        let root = tmpdir("quarantine");
        let store = TraceStore::create(&root).unwrap();
        for seed in [1u64, 2, 3, 4] {
            store
                .save_run(seed, "test", 0, &[trace_with(seed * 7)])
                .unwrap();
        }
        // Damage run 2's trace and run 3's manifest.
        let m2 = store.manifest("seed-00000000000000000002").unwrap();
        let path = store.run_dir(&m2.run_id).join(&m2.nodes[0].file);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::write(
            store
                .run_dir("seed-00000000000000000003")
                .join("manifest.json"),
            "{ not json",
        )
        .unwrap();

        let report = mine_store_with(
            &store,
            MineOptions {
                campaign: CampaignOptions::default(),
                quarantine: true,
            },
            outcome_from,
        )
        .unwrap();
        let seeds: Vec<u64> = report.result.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, vec![1, 4]);
        assert!(
            report.result.errors.is_empty(),
            "{:?}",
            report.result.errors
        );
        assert_eq!(report.quarantined.len(), 2);
        assert_eq!(report.quarantined[0].seed, 2);
        assert_eq!(report.quarantined[1].seed, 3);
        assert!(!report.quarantined[0].reason.is_empty());
        // The runs physically moved, with reasons recorded on disk.
        assert!(!store.run_dir("seed-00000000000000000002").exists());
        let notes = store.quarantined().unwrap();
        assert_eq!(notes.len(), 2);
        assert!(notes[0].run_id.ends_with("2"));
        assert!(notes[1].reason.contains("manifest"));
        // And the remaining corpus still mines cleanly a second time.
        let again = mine_store(&store, CampaignOptions::default(), outcome_from).unwrap();
        assert_eq!(again.outcomes.len(), 2);
        assert!(again.errors.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }
}
