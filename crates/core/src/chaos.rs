//! Deterministic chaos harness: seeded fault injection for supervised
//! campaigns.
//!
//! Robustness claims are only testable if the faults are reproducible.
//! This module derives every injected fault from a single chaos seed via
//! [SplitMix64](crate::supervise::splitmix64): which run panics, which
//! hangs, which fails transiently (and for how many attempts) is a pure
//! function of `(chaos seed, run seed)` — same chaos seed, same faults,
//! same final report, regardless of thread count or wall clock. On-disk
//! corruption is injected the same way: [`corrupt_file`] picks its
//! offset from the chaos seed and the file length.
//!
//! The harness wraps any supervised job ([`ChaosConfig::wrap`]); the
//! fault fires *instead of* the real job, so the chaos suite exercises
//! exactly the supervisor's failure paths:
//!
//! * [`Fault::Panic`] → caught by the supervisor's `catch_unwind`,
//!   surfacing as [`FailureKind::Panic`](crate::campaign::FailureKind);
//! * [`Fault::Hang`] → spins until the watchdog cancels the attempt
//!   (requires [`SupervisorOptions::timeout`](crate::supervise::SupervisorOptions)
//!   — an unwatchdogged hang hangs, which is the point);
//! * [`Fault::Transient`] → fails the first `attempts` attempts with
//!   [`RunFailure::Transient`], then lets the real job run — green iff
//!   the retry budget covers it.

use crate::campaign::RunOutcome;
use crate::supervise::{splitmix64, RunContext, RunFailure};
use sentomist_trace::Trace;
use sentomist_tracestore::{
    CorpusIndex, IoFault, IoShim, RecoveryReport, StoreError, SyncPolicy, TraceStore, WriteClass,
};
use std::path::Path;
use std::time::Duration;

/// The fault injected for one run seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the real job runs.
    None,
    /// The attempt panics.
    Panic,
    /// The attempt spins until the watchdog cancels it.
    Hang,
    /// The first `attempts` attempts fail retryably, then the real job
    /// runs.
    Transient {
        /// Attempts that fail before the fault clears.
        attempts: u32,
    },
}

/// Seeded fault-injection plan. Rates are fractions in `[0, 1]` drawn
/// against a per-run hash, checked in panic → hang → transient order.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// The chaos seed every fault derives from.
    pub seed: u64,
    /// Fraction of runs that panic.
    pub panic_rate: f64,
    /// Fraction of runs that hang until the watchdog fires.
    pub hang_rate: f64,
    /// Fraction of runs that fail transiently (1–2 attempts).
    pub transient_rate: f64,
}

impl ChaosConfig {
    /// A plan injecting every fault class at `rate` each.
    pub fn uniform(seed: u64, rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_rate: rate,
            hang_rate: rate,
            transient_rate: rate,
        }
    }

    /// The fault this plan injects for `run_seed` — a pure function, so
    /// the whole campaign's fault pattern replays bit-identically.
    pub fn fault_for(&self, run_seed: u64) -> Fault {
        let h = splitmix64(self.seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // 53 uniform bits → a draw in [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw < self.panic_rate {
            Fault::Panic
        } else if draw < self.panic_rate + self.hang_rate {
            Fault::Hang
        } else if draw < self.panic_rate + self.hang_rate + self.transient_rate {
            Fault::Transient {
                attempts: 1 + (splitmix64(h) % 2) as u32,
            }
        } else {
            Fault::None
        }
    }

    /// Wraps a supervised job so this plan's faults fire before it.
    pub fn wrap<F>(self, job: F) -> impl Fn(&RunContext) -> Result<RunOutcome, RunFailure>
    where
        F: Fn(&RunContext) -> Result<RunOutcome, RunFailure>,
    {
        move |ctx| match self.fault_for(ctx.seed()) {
            Fault::Panic => panic!("chaos: injected panic at seed {}", ctx.seed()),
            Fault::Hang => {
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(RunFailure::TimedOut(format!(
                    "chaos: injected hang at seed {} cancelled by watchdog",
                    ctx.seed()
                )))
            }
            Fault::Transient { attempts } if ctx.attempt() <= attempts => {
                Err(RunFailure::Transient(format!(
                    "chaos: injected transient fault at seed {} (attempt {}/{})",
                    ctx.seed(),
                    ctx.attempt(),
                    attempts
                )))
            }
            _ => job(ctx),
        }
    }
}

/// Deterministically corrupts the file at `path`: XORs one byte at an
/// offset derived from `chaos_seed` and the file length with `0xA5`.
/// Returns the corrupted offset. Same seed + same file → same damage,
/// so quarantine tests are exactly reproducible.
///
/// # Errors
///
/// I/O failures reading or rewriting the file; corrupting an empty file
/// is an error (there is nothing to damage).
pub fn corrupt_file(path: &Path, chaos_seed: u64) -> std::io::Result<u64> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cannot corrupt an empty file",
        ));
    }
    let offset = splitmix64(chaos_seed ^ bytes.len() as u64) % bytes.len() as u64;
    bytes[offset as usize] ^= 0xA5;
    std::fs::write(path, bytes)?;
    Ok(offset)
}

/// Deterministically truncates the file at `path` to a strict prefix
/// whose length derives from `chaos_seed` (always at least 1 byte
/// shorter, never empty unless the file had a single byte). Returns the
/// new length — the torn-write / killed-process counterpart of
/// [`corrupt_file`].
///
/// # Errors
///
/// I/O failures; truncating an empty file is an error.
pub fn truncate_file(path: &Path, chaos_seed: u64) -> std::io::Result<u64> {
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cannot truncate an empty file",
        ));
    }
    let keep = (splitmix64(chaos_seed ^ bytes.len() as u64) % bytes.len() as u64) as usize;
    std::fs::write(path, &bytes[..keep.max(1).min(bytes.len() - 1)])?;
    Ok(keep.max(1).min(bytes.len() - 1) as u64)
}

// ---------------------------------------------------------------------
// Crash-point harness
// ---------------------------------------------------------------------

/// A site in the trace store's write protocol where the crash harness
/// kills the process — via an injected [`IoFault`] at a seed-derived
/// byte offset of that site's [`WriteClass`], never an actual abort, so
/// the "crash" is deterministic and the test keeps running to verify
/// recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Mid manifest commit (WAL/temp/rename/dir-fsync window).
    ManifestCommit,
    /// Mid shard ingestion (a `.stc` data write tears).
    ShardIngest,
    /// Mid index merge (the `index.json` publication tears).
    IndexMerge,
}

impl CrashSite {
    /// Every site, in matrix order.
    pub const ALL: [CrashSite; 3] = [
        CrashSite::ManifestCommit,
        CrashSite::ShardIngest,
        CrashSite::IndexMerge,
    ];

    /// The byte stream this site tears.
    pub fn write_class(self) -> WriteClass {
        match self {
            CrashSite::ManifestCommit => WriteClass::Manifest,
            CrashSite::ShardIngest => WriteClass::Data,
            CrashSite::IndexMerge => WriteClass::Index,
        }
    }

    /// Stable lower-case name (CLI flag value, report label).
    pub fn slug(self) -> &'static str {
        match self {
            CrashSite::ManifestCommit => "manifest-commit",
            CrashSite::ShardIngest => "shard-ingest",
            CrashSite::IndexMerge => "index-merge",
        }
    }

    /// Parses a [`CrashSite::slug`].
    pub fn from_slug(slug: &str) -> Option<CrashSite> {
        CrashSite::ALL.into_iter().find(|s| s.slug() == slug)
    }
}

/// The result of one [`crash_then_recover`] experiment.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// Where the crash was injected.
    pub site: CrashSite,
    /// The seed the crash offset derived from.
    pub crash_seed: u64,
    /// The byte offset (within the site's write class) that tore.
    pub offset: u64,
    /// Total bytes the uninterrupted workload writes in that class
    /// (the probe measurement the offset was drawn from).
    pub class_bytes: u64,
    /// What recovery found and repaired.
    pub report: RecoveryReport,
    /// Re-mine digest of the uninterrupted baseline corpus.
    pub baseline_digest: u64,
    /// Re-mine digest after crash → recover → re-ingest. The harness's
    /// invariant is `recovered_digest == baseline_digest`.
    pub recovered_digest: u64,
}

impl CrashOutcome {
    /// `true` when recovery restored the exact baseline corpus.
    pub fn digests_match(&self) -> bool {
        self.recovered_digest == self.baseline_digest
    }
}

/// Re-mines a store end to end — every run across the merged shard
/// view, decoded through the zero-copy path and digest-verified — and
/// folds `(seed, trace digests)` into one corpus digest. This is the
/// identity [`crash_then_recover`] compares between an uninterrupted
/// corpus and a recovered one.
///
/// # Errors
///
/// Any store listing or decode failure.
pub fn remine_digest(store: &TraceStore) -> Result<u64, StoreError> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |word: u64| {
        for &b in &word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for run_id in store.run_ids()? {
        let manifest = store.manifest(&run_id)?;
        let traces = store.load_traces(&manifest)?;
        fold(manifest.seed);
        for trace in &traces {
            fold(trace.digest());
        }
    }
    Ok(h)
}

/// A deterministic multi-writer ingestion workload for the crash
/// matrix: fans `seeds` across `writers` shard writers round-robin
/// (`writers == 0` ingests into the primary `runs/` tree), synthesizes
/// each run's trace with `trace_fn`, and finishes with a
/// [`CorpusIndex::merge`]. Idempotent: re-running it over a recovered
/// store overwrites runs with identical bytes and republishes the
/// index.
pub fn ingest_workload<F>(
    seeds: Vec<u64>,
    writers: usize,
    trace_fn: F,
) -> impl Fn(&TraceStore) -> Result<(), StoreError>
where
    F: Fn(u64) -> Trace,
{
    move |store| {
        let shards: Vec<TraceStore> = (0..writers)
            .map(|w| store.shard(&format!("writer-{w:02}")))
            .collect::<Result<_, _>>()?;
        for (i, &seed) in seeds.iter().enumerate() {
            let target = if shards.is_empty() {
                store
            } else {
                &shards[i % shards.len()]
            };
            target.save_run(seed, "crash-matrix", 0, &[trace_fn(seed)])?;
        }
        CorpusIndex::merge(store)?;
        Ok(())
    }
}

/// Runs the full crash-point experiment for one `(site, crash_seed)`
/// cell of the matrix, under `root` (a scratch directory):
///
/// 1. **Baseline** — run `workload` uninterrupted in `root/baseline`,
///    re-mine it for the reference digest.
/// 2. **Probe** — run it again in `root/probe` on a counting shim to
///    learn how many bytes the site's write class receives; the crash
///    offset is `splitmix64(crash_seed ⊕ site) % class_bytes`, so every
///    seed kills at a different point of the protocol.
/// 3. **Crash** — run it in `root/crashed` with an [`IoFault`] armed at
///    that offset. The write crossing the offset tears mid-file and
///    every later I/O fails, exactly like a killed process.
/// 4. **Recover** — reopen `root/crashed` with a fresh shim, run
///    [`TraceStore::recover`], re-run the workload (quarantined seeds
///    get re-ingested by idempotence), and re-mine.
///
/// The invariant under test: the recovered re-mine digest equals the
/// uninterrupted baseline digest, for **every** seeded crash point.
///
/// # Errors
///
/// Infrastructure failures (store creation, baseline/probe runs,
/// recovery). The injected crash itself is expected and not an error.
pub fn crash_then_recover<W>(
    root: &Path,
    site: CrashSite,
    crash_seed: u64,
    workload: W,
) -> Result<CrashOutcome, StoreError>
where
    W: Fn(&TraceStore) -> Result<(), StoreError>,
{
    let class = site.write_class();

    // 1. Uninterrupted baseline.
    let baseline = TraceStore::create_with(root.join("baseline"), IoShim::new(SyncPolicy::Fast))?;
    workload(&baseline)?;
    let baseline_digest = remine_digest(&baseline)?;

    // 2. Probe pass: how many bytes does this class receive?
    let probe_shim = IoShim::new(SyncPolicy::Fast);
    let probe = TraceStore::create_with(root.join("probe"), probe_shim.clone())?;
    workload(&probe)?;
    let class_bytes = probe_shim.bytes_written(class);
    let offset = if class_bytes == 0 {
        0
    } else {
        splitmix64(crash_seed ^ (site.slug().len() as u64) << 32 ^ 0xC4A5_11F0) % class_bytes
    };

    // 3. Crash run: the write crossing `offset` tears, then everything
    // fails. The workload is expected to error out mid-flight.
    let crash_root = root.join("crashed");
    let fault = IoFault { class, offset };
    let crash_shim = IoShim::with_fault(SyncPolicy::Fast, fault);
    let crashed_store = TraceStore::create_with(&crash_root, crash_shim.clone())?;
    let _expected_death = workload(&crashed_store);

    // 4. Recover with a fresh process image (new shim, no fault), then
    // re-ingest and re-mine.
    let recovered = TraceStore::open_with(&crash_root, IoShim::new(SyncPolicy::Fast))?;
    let report = recovered.recover()?;
    workload(&recovered)?;
    let recovered_digest = remine_digest(&recovered)?;

    Ok(CrashOutcome {
        site,
        crash_seed,
        offset,
        class_bytes,
        report,
        baseline_digest,
        recovered_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Verdict;

    fn plan() -> ChaosConfig {
        ChaosConfig::uniform(0xC0FFEE, 0.15)
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let a: Vec<Fault> = (0..200).map(|s| plan().fault_for(s)).collect();
        let b: Vec<Fault> = (0..200).map(|s| plan().fault_for(s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_rates_inject_every_fault_class() {
        let faults: Vec<Fault> = (0..400).map(|s| plan().fault_for(s)).collect();
        assert!(faults.contains(&Fault::Panic));
        assert!(faults.contains(&Fault::Hang));
        assert!(faults.iter().any(|f| matches!(f, Fault::Transient { .. })));
        let clean = faults.iter().filter(|&&f| f == Fault::None).count();
        assert!(clean > 100, "only {clean}/400 clean runs at 3×15% rates");
    }

    #[test]
    fn zero_rates_never_inject() {
        let cfg = ChaosConfig::uniform(1, 0.0);
        assert!((0..500).all(|s| cfg.fault_for(s) == Fault::None));
    }

    #[test]
    fn wrapped_job_passes_through_on_clean_seeds() {
        let cfg = ChaosConfig::uniform(7, 0.0);
        let job = cfg.wrap(|ctx: &RunContext| {
            Ok(RunOutcome {
                seed: ctx.seed(),
                samples: 1,
                symptoms: 0,
                buggy_ranks: vec![],
                verdict: Verdict::Clean,
                trace_digest: "0".repeat(16),
                wall_time_ms: 0,
            })
        });
        let out = job(&RunContext::new(9, 1, None)).unwrap();
        assert_eq!(out.seed, 9);
    }

    #[test]
    fn transient_fault_clears_after_its_attempt_budget() {
        // Find a seed the plan marks transient, then drive attempts.
        let cfg = plan();
        let (seed, attempts) = (0..)
            .find_map(|s| match cfg.fault_for(s) {
                Fault::Transient { attempts } => Some((s, attempts)),
                _ => None,
            })
            .unwrap();
        let job = cfg.wrap(|ctx: &RunContext| {
            Ok(RunOutcome {
                seed: ctx.seed(),
                samples: 0,
                symptoms: 0,
                buggy_ranks: vec![],
                verdict: Verdict::Clean,
                trace_digest: "0".repeat(16),
                wall_time_ms: 0,
            })
        });
        for attempt in 1..=attempts {
            assert!(matches!(
                job(&RunContext::new(seed, attempt, None)),
                Err(RunFailure::Transient(_))
            ));
        }
        assert!(job(&RunContext::new(seed, attempts + 1, None)).is_ok());
    }

    fn crash_trace(seed: u64) -> Trace {
        use sentomist_trace::TraceEvent;
        use tinyvm::LifecycleItem;
        let base = seed % 50 + 1;
        Trace {
            events: vec![
                TraceEvent {
                    cycle: base,
                    item: LifecycleItem::Int((seed % 3) as u8),
                },
                TraceEvent {
                    cycle: base + 3,
                    item: LifecycleItem::Reti,
                },
            ],
            segments: vec![vec![1, 0], vec![0, (seed % 7) as u32 + 1], vec![2, 2]],
            program_len: 2,
        }
    }

    #[test]
    fn crash_site_slugs_round_trip() {
        for site in CrashSite::ALL {
            assert_eq!(CrashSite::from_slug(site.slug()), Some(site));
        }
        assert_eq!(CrashSite::from_slug("nope"), None);
    }

    #[test]
    fn crash_matrix_recovers_to_the_baseline_digest() {
        let root =
            std::env::temp_dir().join(format!("sentomist-crashmatrix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for site in CrashSite::ALL {
            for k in 0..2u64 {
                let cell = root.join(format!("{}-{k}", site.slug()));
                let outcome = crash_then_recover(
                    &cell,
                    site,
                    0xBEEF + k,
                    ingest_workload((1..=6).collect(), 2, crash_trace),
                )
                .unwrap();
                assert!(outcome.class_bytes > 0, "{site:?} wrote no bytes");
                assert!(
                    outcome.offset < outcome.class_bytes,
                    "{site:?} offset out of range"
                );
                assert!(
                    outcome.digests_match(),
                    "{site:?} seed {k}: recovered {:016x} != baseline {:016x} ({:?})",
                    outcome.recovered_digest,
                    outcome.baseline_digest,
                    outcome.report,
                );
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_offsets_are_deterministic_per_seed() {
        let root = std::env::temp_dir().join(format!("sentomist-crashdet-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let run = |dir: &str| {
            crash_then_recover(
                &root.join(dir),
                CrashSite::ManifestCommit,
                42,
                ingest_workload(vec![3, 1, 2], 1, crash_trace),
            )
            .unwrap()
        };
        let a = run("a");
        let b = run("b");
        assert_eq!(a.offset, b.offset);
        assert_eq!(a.class_bytes, b.class_bytes);
        assert_eq!(a.recovered_digest, b.recovered_digest);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn file_corruption_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("sentomist-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        let original: Vec<u8> = (0..=255u8).collect();
        std::fs::write(&path, &original).unwrap();
        let off1 = corrupt_file(&path, 99).unwrap();
        let damaged = std::fs::read(&path).unwrap();
        std::fs::write(&path, &original).unwrap();
        let off2 = corrupt_file(&path, 99).unwrap();
        assert_eq!(off1, off2);
        assert_eq!(damaged, std::fs::read(&path).unwrap());
        assert_ne!(damaged, original);
        std::fs::write(&path, &original).unwrap();
        let kept = truncate_file(&path, 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len() as u64, kept);
        assert!(kept < original.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
