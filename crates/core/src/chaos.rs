//! Deterministic chaos harness: seeded fault injection for supervised
//! campaigns.
//!
//! Robustness claims are only testable if the faults are reproducible.
//! This module derives every injected fault from a single chaos seed via
//! [SplitMix64](crate::supervise::splitmix64): which run panics, which
//! hangs, which fails transiently (and for how many attempts) is a pure
//! function of `(chaos seed, run seed)` — same chaos seed, same faults,
//! same final report, regardless of thread count or wall clock. On-disk
//! corruption is injected the same way: [`corrupt_file`] picks its
//! offset from the chaos seed and the file length.
//!
//! The harness wraps any supervised job ([`ChaosConfig::wrap`]); the
//! fault fires *instead of* the real job, so the chaos suite exercises
//! exactly the supervisor's failure paths:
//!
//! * [`Fault::Panic`] → caught by the supervisor's `catch_unwind`,
//!   surfacing as [`FailureKind::Panic`](crate::campaign::FailureKind);
//! * [`Fault::Hang`] → spins until the watchdog cancels the attempt
//!   (requires [`SupervisorOptions::timeout`](crate::supervise::SupervisorOptions)
//!   — an unwatchdogged hang hangs, which is the point);
//! * [`Fault::Transient`] → fails the first `attempts` attempts with
//!   [`RunFailure::Transient`], then lets the real job run — green iff
//!   the retry budget covers it.

use crate::campaign::RunOutcome;
use crate::supervise::{splitmix64, RunContext, RunFailure};
use std::path::Path;
use std::time::Duration;

/// The fault injected for one run seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the real job runs.
    None,
    /// The attempt panics.
    Panic,
    /// The attempt spins until the watchdog cancels it.
    Hang,
    /// The first `attempts` attempts fail retryably, then the real job
    /// runs.
    Transient {
        /// Attempts that fail before the fault clears.
        attempts: u32,
    },
}

/// Seeded fault-injection plan. Rates are fractions in `[0, 1]` drawn
/// against a per-run hash, checked in panic → hang → transient order.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// The chaos seed every fault derives from.
    pub seed: u64,
    /// Fraction of runs that panic.
    pub panic_rate: f64,
    /// Fraction of runs that hang until the watchdog fires.
    pub hang_rate: f64,
    /// Fraction of runs that fail transiently (1–2 attempts).
    pub transient_rate: f64,
}

impl ChaosConfig {
    /// A plan injecting every fault class at `rate` each.
    pub fn uniform(seed: u64, rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_rate: rate,
            hang_rate: rate,
            transient_rate: rate,
        }
    }

    /// The fault this plan injects for `run_seed` — a pure function, so
    /// the whole campaign's fault pattern replays bit-identically.
    pub fn fault_for(&self, run_seed: u64) -> Fault {
        let h = splitmix64(self.seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // 53 uniform bits → a draw in [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw < self.panic_rate {
            Fault::Panic
        } else if draw < self.panic_rate + self.hang_rate {
            Fault::Hang
        } else if draw < self.panic_rate + self.hang_rate + self.transient_rate {
            Fault::Transient {
                attempts: 1 + (splitmix64(h) % 2) as u32,
            }
        } else {
            Fault::None
        }
    }

    /// Wraps a supervised job so this plan's faults fire before it.
    pub fn wrap<F>(self, job: F) -> impl Fn(&RunContext) -> Result<RunOutcome, RunFailure>
    where
        F: Fn(&RunContext) -> Result<RunOutcome, RunFailure>,
    {
        move |ctx| match self.fault_for(ctx.seed()) {
            Fault::Panic => panic!("chaos: injected panic at seed {}", ctx.seed()),
            Fault::Hang => {
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(RunFailure::TimedOut(format!(
                    "chaos: injected hang at seed {} cancelled by watchdog",
                    ctx.seed()
                )))
            }
            Fault::Transient { attempts } if ctx.attempt() <= attempts => {
                Err(RunFailure::Transient(format!(
                    "chaos: injected transient fault at seed {} (attempt {}/{})",
                    ctx.seed(),
                    ctx.attempt(),
                    attempts
                )))
            }
            _ => job(ctx),
        }
    }
}

/// Deterministically corrupts the file at `path`: XORs one byte at an
/// offset derived from `chaos_seed` and the file length with `0xA5`.
/// Returns the corrupted offset. Same seed + same file → same damage,
/// so quarantine tests are exactly reproducible.
///
/// # Errors
///
/// I/O failures reading or rewriting the file; corrupting an empty file
/// is an error (there is nothing to damage).
pub fn corrupt_file(path: &Path, chaos_seed: u64) -> std::io::Result<u64> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cannot corrupt an empty file",
        ));
    }
    let offset = splitmix64(chaos_seed ^ bytes.len() as u64) % bytes.len() as u64;
    bytes[offset as usize] ^= 0xA5;
    std::fs::write(path, bytes)?;
    Ok(offset)
}

/// Deterministically truncates the file at `path` to a strict prefix
/// whose length derives from `chaos_seed` (always at least 1 byte
/// shorter, never empty unless the file had a single byte). Returns the
/// new length — the torn-write / killed-process counterpart of
/// [`corrupt_file`].
///
/// # Errors
///
/// I/O failures; truncating an empty file is an error.
pub fn truncate_file(path: &Path, chaos_seed: u64) -> std::io::Result<u64> {
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cannot truncate an empty file",
        ));
    }
    let keep = (splitmix64(chaos_seed ^ bytes.len() as u64) % bytes.len() as u64) as usize;
    std::fs::write(path, &bytes[..keep.max(1).min(bytes.len() - 1)])?;
    Ok(keep.max(1).min(bytes.len() - 1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Verdict;

    fn plan() -> ChaosConfig {
        ChaosConfig::uniform(0xC0FFEE, 0.15)
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let a: Vec<Fault> = (0..200).map(|s| plan().fault_for(s)).collect();
        let b: Vec<Fault> = (0..200).map(|s| plan().fault_for(s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_rates_inject_every_fault_class() {
        let faults: Vec<Fault> = (0..400).map(|s| plan().fault_for(s)).collect();
        assert!(faults.contains(&Fault::Panic));
        assert!(faults.contains(&Fault::Hang));
        assert!(faults.iter().any(|f| matches!(f, Fault::Transient { .. })));
        let clean = faults.iter().filter(|&&f| f == Fault::None).count();
        assert!(clean > 100, "only {clean}/400 clean runs at 3×15% rates");
    }

    #[test]
    fn zero_rates_never_inject() {
        let cfg = ChaosConfig::uniform(1, 0.0);
        assert!((0..500).all(|s| cfg.fault_for(s) == Fault::None));
    }

    #[test]
    fn wrapped_job_passes_through_on_clean_seeds() {
        let cfg = ChaosConfig::uniform(7, 0.0);
        let job = cfg.wrap(|ctx: &RunContext| {
            Ok(RunOutcome {
                seed: ctx.seed(),
                samples: 1,
                symptoms: 0,
                buggy_ranks: vec![],
                verdict: Verdict::Clean,
                trace_digest: "0".repeat(16),
                wall_time_ms: 0,
            })
        });
        let out = job(&RunContext::new(9, 1, None)).unwrap();
        assert_eq!(out.seed, 9);
    }

    #[test]
    fn transient_fault_clears_after_its_attempt_budget() {
        // Find a seed the plan marks transient, then drive attempts.
        let cfg = plan();
        let (seed, attempts) = (0..)
            .find_map(|s| match cfg.fault_for(s) {
                Fault::Transient { attempts } => Some((s, attempts)),
                _ => None,
            })
            .unwrap();
        let job = cfg.wrap(|ctx: &RunContext| {
            Ok(RunOutcome {
                seed: ctx.seed(),
                samples: 0,
                symptoms: 0,
                buggy_ranks: vec![],
                verdict: Verdict::Clean,
                trace_digest: "0".repeat(16),
                wall_time_ms: 0,
            })
        });
        for attempt in 1..=attempts {
            assert!(matches!(
                job(&RunContext::new(seed, attempt, None)),
                Err(RunFailure::Transient(_))
            ));
        }
        assert!(job(&RunContext::new(seed, attempts + 1, None)).is_ok());
    }

    #[test]
    fn file_corruption_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("sentomist-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        let original: Vec<u8> = (0..=255u8).collect();
        std::fs::write(&path, &original).unwrap();
        let off1 = corrupt_file(&path, 99).unwrap();
        let damaged = std::fs::read(&path).unwrap();
        std::fs::write(&path, &original).unwrap();
        let off2 = corrupt_file(&path, 99).unwrap();
        assert_eq!(off1, off2);
        assert_eq!(damaged, std::fs::read(&path).unwrap());
        assert_ne!(damaged, original);
        std::fs::write(&path, &original).unwrap();
        let kept = truncate_file(&path, 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len() as u64, kept);
        assert!(kept < original.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
