//! # sentomist-core — the Sentomist symptom-mining pipeline
//!
//! End-to-end reproduction of the framework in ["Sentomist: Unveiling
//! Transient Sensor Network Bugs via Symptom
//! Mining"](https://doi.org/10.1109/ICDCS.2010.75) (ICDCS 2010): take a
//! WSN application binary and a test scenario, run it on the emulator,
//! anatomize the program runtime into event-handling intervals, featurize
//! each as an instruction counter, apply a plug-in outlier detector, and
//! rank the intervals by how suspicious they are — the priority order for
//! manual inspection.
//!
//! * [`sample::harvest_set`] — trace → a [`SampleSet`]: labels plus a
//!   dense row-major feature matrix, one row per interval of the event
//!   type, written straight from the trace's counter table;
//! * [`Pipeline`] — scale → detect → normalize → rank;
//! * [`Report`] — Figure-5-style ranking tables and rank queries;
//! * [`campaign`] — parallel seed-sweep orchestration with
//!   reproducible-by-seed replay of any flagged run;
//! * [`supervise`] — the fault-tolerant variant: panic isolation,
//!   watchdogs, deterministic retry and checkpointable completion
//!   reporting, provable under the seeded [`chaos`] harness;
//! * [`corpus::mine_store`] — the same sweep over a persisted trace
//!   corpus (`sentomist-tracestore`), re-mining without re-emulating;
//! * [`hunt`] — invariant-driven bug-bounty campaigns: seeded scenario
//!   sweeps checked against an explicit invariant registry, aggregated
//!   into a `BUG_REPORT.md`-shaped artifact with per-invariant detection
//!   rates and seed-exact repro lines;
//! * [`localize()`](localize::localize) — the paper's future-work extension: map an outlier's
//!   deviating instruction counts back to assembly lines and routines.
//!
//! ```
//! # use std::sync::Arc;
//! # use tinyvm::{asm, devices::NodeConfig, node::Node};
//! use sentomist_core::{harvest_set, Pipeline, SampleIndex};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let program = Arc::new(asm::assemble("\
//! # .handler TIMER0 h
//! # main:
//! #  ldi r1, 4
//! #  out TIMER0_PERIOD, r1
//! #  ldi r1, 1
//! #  out TIMER0_CTRL, r1
//! #  ret
//! # h:
//! #  reti
//! # ")?);
//! // Run the application under test and record its lifecycle trace.
//! let mut node = Node::new(program.clone(), NodeConfig::default());
//! let mut recorder = sentomist_trace::Recorder::new(program.len());
//! node.run(2_000_000, &mut recorder)?;
//! let trace = recorder.into_trace();
//!
//! // Anatomize + featurize the TIMER0 event procedure, then rank.
//! let samples = harvest_set(&trace, tinyvm::isa::irq::TIMER0, |seq, _| {
//!     SampleIndex::Seq(seq)
//! })?;
//! let report = Pipeline::default_ocsvm(0.05).rank_set(samples)?;
//! println!("{}", report.table(5, 2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod campaign;
pub mod causal;
pub mod chaos;
pub mod corpus;
pub mod hunt;
pub mod localize;
pub mod monitor;
pub mod pipeline;
pub mod report;
pub mod sample;
pub mod supervise;

pub use baseline::BaselineModel;
pub use campaign::{
    replay, run_campaign, summarize, summarize_result, CampaignOptions, CampaignResult,
    CampaignSummary, FailureKind, RunError, RunOutcome, Verdict,
};
pub use causal::{causal_chain, CausalChain, CausalError, ChainHop, ChainSite};
pub use chaos::{corrupt_file, truncate_file, ChaosConfig, Fault};
pub use corpus::{mine_store, mine_store_with, MineOptions, MineReport, QuarantinedRun};
pub use hunt::{
    check_invariants, run_hunt_target, Evidence, HuntReport, InvariantId, InvariantPolicy,
    InvariantStats, IterationRecord, TargetOutcome, TargetReport, Violation, INVARIANTS,
};
pub use localize::{
    corroborate, corroborate_with_chain, localize, localize_set, CorroboratedInstruction,
    ImplicatedInstruction,
};
pub use monitor::WindowedMiner;
pub use pipeline::{Pipeline, PipelineError};
pub use report::{RankedSample, Report};
pub use sample::{harvest, harvest_set, Sample, SampleIndex, SampleMeta, SampleSet};
pub use supervise::{
    adapt_seed_job, backoff_delay_ms, run_supervised, run_supervised_typed, supervise_once,
    RunContext, RunFailure, SeedReport, SupervisedResult, SupervisorOptions, TypedReport,
};
