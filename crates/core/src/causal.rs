//! Causal-chain reconstruction: intersecting the static backward slice
//! of a symptom site with the dynamic execution of one symptom interval.
//!
//! Localization ([`crate::localize`]) ranks instructions by how far their
//! counts deviate; this module explains *how* the deviation happened. It
//! takes the flagged event-handling interval, attributes every
//! instruction executed inside it to the lifecycle context that ran it
//! (replaying the trace's `Int`/`Reti`/`runTask`/`taskEnd` events — the
//! dynamic counterpart of staticlint's context map), computes the static
//! backward slice from the deviating pcs, and keeps exactly the
//! cross-context write→read edges of the slice whose *victim read*
//! executed inside the interval and whose *publishing write* executed by
//! the interval's end — inside it, or in the trace prefix before it: the
//! stale publication that decides a transient symptom typically precedes
//! the interval that exhibits it (a busy flag set by an earlier task
//! run, a buffer published by the previous interrupt). Both endpoints
//! must be attributed to different lifecycle contexts.
//!
//! The slice is further required to be anchored by a static warning — a
//! warning's pc (or one of its related pcs) inside the slice, or a
//! sliced interleaving edge moving the warning's object. That anchoring
//! is the second pruning stage after the slice's own concurrency
//! pruning: a *fixed* variant still shares objects across contexts —
//! protectedly — and still has interleaving edges in the raw graph, but
//! it lints clean, so nothing anchors and no chain is emitted. The ordered
//! survivors form a [`CausalChain`]: handler-write → task-read hops with
//! pc, source-line, routine and object evidence, in dynamic (first read)
//! order — the artifact `corroborate` fuses as a third evidence stream
//! next to static warnings and outlier rank.

use sentomist_trace::{EventInterval, Trace};
use serde::{Deserialize, Serialize};
use staticlint::{Context, DependenceGraph, LintReport, Warning};
use std::error::Error;
use std::fmt;
use tinyvm::{LifecycleItem, Program};

/// Structural failures of chain reconstruction. A chain that merely does
/// not exist is `Ok(None)`, not an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalError {
    /// The interval's indices point past the trace's event sequence.
    IntervalOutOfBounds {
        /// The interval's closing event index.
        end_index: usize,
        /// Events actually recorded.
        events: usize,
    },
    /// The trace's segment array violates the `events + 1` invariant.
    MalformedSegments {
        /// Segments recorded.
        segments: usize,
        /// Events recorded.
        events: usize,
    },
}

impl fmt::Display for CausalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalError::IntervalOutOfBounds { end_index, events } => write!(
                f,
                "interval ends at event {end_index} but the trace has {events} event(s)"
            ),
            CausalError::MalformedSegments { segments, events } => write!(
                f,
                "trace has {segments} segment(s) for {events} event(s) (want events + 1)"
            ),
        }
    }
}

impl Error for CausalError {}

/// One endpoint of a causal hop, with its source evidence and the
/// lifecycle context that executed it inside the symptom interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSite {
    /// Instruction index.
    pub pc: u16,
    /// 1-based assembly source line, if known.
    pub source_line: Option<u32>,
    /// Enclosing routine label.
    pub routine: Option<String>,
    /// The dynamically attributed context, e.g. `irq ADC` or
    /// `task send_task`.
    pub context: String,
}

/// One cross-context hop of the chain: `write` published a shared value
/// that `read` consumed in a different lifecycle context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainHop {
    /// The publishing site.
    pub write: ChainSite,
    /// The consuming site.
    pub read: ChainSite,
    /// The shared data object, when the location lies in a labeled one.
    pub object: Option<String>,
    /// Index of the first trace segment inside the interval in which the
    /// read executed — the hop's position in dynamic order.
    pub first_read_segment: usize,
}

/// The reconstructed causal chain of one symptom interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalChain {
    /// The slice seeds that survived validation, sorted.
    pub seeds: Vec<u16>,
    /// Cross-context hops in dynamic order (`first_read_segment`, then
    /// read pc, then write pc).
    pub hops: Vec<ChainHop>,
    /// The backward slice of the chain's anchors (hop endpoints and the
    /// statically flagged sites the seed slice reached), restricted to
    /// instructions that actually executed inside the interval,
    /// ascending — the shrunken universe a `--causal` localization
    /// report is filtered to.
    pub sliced_executed: Vec<u16>,
}

impl CausalChain {
    /// Whether the chain's evidence covers `pc`: a hop endpoint or a
    /// member of the executed slice.
    pub fn contains(&self, pc: u16) -> bool {
        self.hops
            .iter()
            .any(|h| h.write.pc == pc || h.read.pc == pc)
            || self.sliced_executed.binary_search(&pc).is_ok()
    }

    /// Whether any hop endpoint lies in `routine`.
    pub fn touches_routine(&self, routine: &str) -> bool {
        self.hops.iter().any(|h| {
            h.write.routine.as_deref() == Some(routine)
                || h.read.routine.as_deref() == Some(routine)
        })
    }
}

/// Attributes every trace segment to the lifecycle context executing it:
/// `ctx_of_segment[k]` is the context of the instructions counted in
/// `trace.segments[k]`. Replays the event sequence with a context stack
/// (interrupts push/pop, tasks replace the base), mirroring how the
/// static [`staticlint::ContextMap`] partitions the program.
fn attribute_segments(trace: &Trace) -> Vec<Context> {
    let mut out = Vec::with_capacity(trace.events.len() + 1);
    let mut stack: Vec<Context> = vec![Context::Main];
    out.push(Context::Main);
    for event in &trace.events {
        match event.item {
            LifecycleItem::Int(n) => stack.push(Context::Irq(n)),
            LifecycleItem::Reti => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
            LifecycleItem::RunTask(t) => stack[0] = Context::Task(t.0 as usize),
            LifecycleItem::TaskEnd(_) => stack[0] = Context::Main,
            LifecycleItem::PostTask(_) => {}
        }
        out.push(stack.last().copied().unwrap_or(Context::Main));
    }
    out
}

/// Whether `warning` anchors the slice — its flagged pc (or a related
/// pc) lies inside the slice, or one of the slice's interleaving edges
/// moves the warning's object. The warning-gated pruning that keeps
/// fixed variants chain-free: a chain must explain a statically flagged
/// site, not merely a shared object.
fn warning_anchors(warning: &Warning, slice: &staticlint::Slice) -> bool {
    slice.contains(warning.pc)
        || warning.related_pcs.iter().any(|&pc| slice.contains(pc))
        || (warning.object.is_some() && slice.cross.iter().any(|e| e.object == warning.object))
}

/// Reconstructs the causal chain of one symptom interval.
///
/// `seeds` are the dynamically implicated pcs (typically
/// [`localize`](crate::localize::localize) hits); seeds outside the
/// program or in statically unreachable code are dropped. Returns
/// `Ok(None)` when no chain exists: the program lints clean (every fixed
/// variant), no seed survives validation, or no warning-anchored
/// cross-context edge has its read executed inside the interval — and
/// its write executed by the interval's end — under different attributed
/// contexts.
///
/// # Errors
///
/// [`CausalError`] for structurally broken inputs only.
pub fn causal_chain(
    program: &Program,
    trace: &Trace,
    interval: &EventInterval,
    seeds: &[u16],
    lint: &LintReport,
) -> Result<Option<CausalChain>, CausalError> {
    let events = trace.events.len();
    if trace.segments.len() != events + 1 {
        return Err(CausalError::MalformedSegments {
            segments: trace.segments.len(),
            events,
        });
    }
    if interval.end_index >= events || interval.start_index > interval.end_index {
        return Err(CausalError::IntervalOutOfBounds {
            end_index: interval.end_index,
            events,
        });
    }
    if lint.warnings.is_empty() {
        return Ok(None);
    }
    let graph = DependenceGraph::build(program);
    let mut valid_seeds: Vec<u16> = seeds
        .iter()
        .copied()
        .filter(|&pc| graph.valid_seed(pc))
        .collect();
    valid_seeds.sort_unstable();
    valid_seeds.dedup();
    if valid_seeds.is_empty() {
        return Ok(None);
    }
    let Ok(slice) = graph.backward_slice(&valid_seeds) else {
        return Ok(None);
    };
    if !lint.warnings.iter().any(|w| warning_anchors(w, &slice)) {
        return Ok(None);
    }

    // Dynamic attribution: which contexts executed each pc inside the
    // interval, and in which segment it first ran. Segment k counts the
    // instructions between events k-1 and k, so the interval
    // [start_index, end_index] executed segments start+1 ..= end. Writes
    // get a wider window — every segment up to the interval's end — so a
    // stale value published *before* the symptom interval still anchors
    // its hop.
    let ctx_of_segment = attribute_segments(trace);
    let n = program.len();
    let mut executed_ctxs: Vec<Vec<Context>> = vec![Vec::new(); n];
    let mut write_ctxs: Vec<Vec<Context>> = vec![Vec::new(); n];
    let mut first_segment: Vec<Option<usize>> = vec![None; n];
    for (seg, &ctx) in ctx_of_segment
        .iter()
        .enumerate()
        .take(interval.end_index + 1)
    {
        let in_interval = seg > interval.start_index;
        for (pc, &count) in trace.segments[seg].iter().enumerate().take(n) {
            if count == 0 {
                continue;
            }
            if !write_ctxs[pc].contains(&ctx) {
                write_ctxs[pc].push(ctx);
            }
            if !in_interval {
                continue;
            }
            if !executed_ctxs[pc].contains(&ctx) {
                executed_ctxs[pc].push(ctx);
            }
            if first_segment[pc].is_none() {
                first_segment[pc] = Some(seg);
            }
        }
    }

    let site = |pc: u16, ctx: Context| ChainSite {
        pc,
        source_line: program.source_line(pc),
        routine: program.enclosing_label(pc).map(str::to_string),
        context: ctx.describe(program),
    };
    let mut hops: Vec<ChainHop> = Vec::new();
    for edge in &slice.cross {
        let (wpc, rpc) = (edge.write_pc as usize, edge.read_pc as usize);
        if write_ctxs[wpc].is_empty() || executed_ctxs[rpc].is_empty() {
            continue;
        }
        // Deterministic pick of a differing attributed context pair:
        // sort both sides by display name, take the first mismatch.
        let mut wctxs = write_ctxs[wpc].clone();
        let mut rctxs = executed_ctxs[rpc].clone();
        wctxs.sort_by_key(|c| c.describe(program));
        rctxs.sort_by_key(|c| c.describe(program));
        let pair = wctxs
            .iter()
            .find_map(|&cw| rctxs.iter().find(|&&cr| cr != cw).map(|&cr| (cw, cr)));
        let Some((cw, cr)) = pair else { continue };
        if hops
            .iter()
            .any(|h| h.write.pc == edge.write_pc && h.read.pc == edge.read_pc)
        {
            continue;
        }
        hops.push(ChainHop {
            write: site(edge.write_pc, cw),
            read: site(edge.read_pc, cr),
            object: edge.object.clone(),
            first_read_segment: first_segment[rpc].unwrap_or(0),
        });
    }
    if hops.is_empty() {
        return Ok(None);
    }
    hops.sort_by_key(|h| (h.first_read_segment, h.read.pc, h.write.pc));
    // The chain's executed slice is re-rooted at the causally meaningful
    // anchors — the hop endpoints plus the statically flagged sites the
    // seed slice reached — not at every dynamically deviant pc. A seed
    // is trivially a member of its own backward slice, so keeping the
    // full seed slice would make chain membership vacuous; slicing from
    // the anchors keeps exactly the instructions that can influence a
    // hop or a flagged site, which is what lets a `--causal`
    // localization strictly shrink the flat deviation list.
    let mut anchors: Vec<u16> = hops.iter().flat_map(|h| [h.write.pc, h.read.pc]).collect();
    for w in &lint.warnings {
        anchors.extend(
            std::iter::once(w.pc)
                .chain(w.related_pcs.iter().copied())
                .filter(|&pc| slice.contains(pc)),
        );
    }
    anchors.sort_unstable();
    anchors.dedup();
    // Hop endpoints executed dynamically, so they are statically
    // reachable by the CFG's over-approximation guarantee; the warning
    // anchors were filtered to slice members. A failure here means the
    // guarantee broke — answer "no chain" rather than panicking.
    let Ok(core) = graph.backward_slice(&anchors) else {
        return Ok(None);
    };
    let sliced_executed: Vec<u16> = core
        .pcs
        .iter()
        .copied()
        .filter(|&pc| !executed_ctxs[pc as usize].is_empty())
        .collect();
    Ok(Some(CausalChain {
        seeds: valid_seeds,
        hops,
        sliced_executed,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentomist_trace::TraceEvent;
    use tinyvm::TaskId;

    /// The handler publishes `buf` word 0 always but word 1 only on one
    /// path — the torn-publication shape the linter flags — and the
    /// posted task consumes both words.
    const RACY: &str = "\
.handler RX on_rx
.task consume
.data buf 2
main:
 ret
on_rx:
 ldi r4, 7
 sta buf, r4
 cmpi r4, 9
 breq rx_done
 ldi r5, buf
 st [r5+1], r4
rx_done:
 post consume
 reti
consume:
 ldi r3, buf
 ld r1, [r3]
 ld r2, [r3+1]
 out RADIO_TX_PUSH, r1
 ret
";

    /// Builds the trace of one handler instance that posts its task:
    /// main boot, RX interrupt (through the torn path), reti, task run.
    fn racy_trace(program: &Program) -> (Trace, EventInterval) {
        let n = program.len();
        let on_rx = program.label("on_rx").unwrap() as usize;
        let consume = program.label("consume").unwrap() as usize;
        let mut segments = vec![vec![0u32; n]; 6];
        segments[0][0] = 1; // main: ret
        for count in &mut segments[1][on_rx..=on_rx + 6] {
            *count = 1; // handler body through the post
        }
        segments[2][on_rx + 7] = 1; // reti
        for count in &mut segments[4][consume..=consume + 4] {
            *count = 1; // task body
        }
        let items = [
            LifecycleItem::Int(tinyvm::isa::irq::RX),
            LifecycleItem::PostTask(TaskId(0)),
            LifecycleItem::Reti,
            LifecycleItem::RunTask(TaskId(0)),
            LifecycleItem::TaskEnd(TaskId(0)),
        ];
        let trace = Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: 10 + i as u64,
                    item,
                })
                .collect(),
            segments,
            program_len: n,
        };
        let interval = EventInterval {
            irq: tinyvm::isa::irq::RX,
            start_index: 0,
            end_index: 4,
            last_run_index: Some(3),
            start_cycle: 10,
            end_cycle: 14,
            task_count: 1,
        };
        (trace, interval)
    }

    #[test]
    fn chain_links_handler_write_to_task_read() {
        let program = tinyvm::assemble(RACY).unwrap();
        let lint = staticlint::lint(&program);
        assert!(!lint.warnings.is_empty(), "test premise: program is racy");
        let (trace, interval) = racy_trace(&program);
        let seed = program.label("consume").unwrap() + 3; // out (symptom)
        let chain = causal_chain(&program, &trace, &interval, &[seed], &lint)
            .unwrap()
            .expect("racy program must yield a chain");
        let sta_buf = program.label("on_rx").unwrap() + 1;
        let ld_buf = program.label("consume").unwrap() + 1;
        let hop = &chain.hops[0];
        assert_eq!(hop.write.pc, sta_buf);
        assert_eq!(hop.read.pc, ld_buf);
        assert_eq!(hop.object.as_deref(), Some("buf"));
        assert_eq!(hop.write.context, "irq RX");
        assert_eq!(hop.read.context, "task consume");
        assert!(chain.contains(sta_buf) && chain.contains(ld_buf));
        assert!(chain.touches_routine("on_rx"));
    }

    #[test]
    fn clean_lint_means_no_chain() {
        let program = tinyvm::assemble(RACY).unwrap();
        let (trace, interval) = racy_trace(&program);
        let clean = LintReport {
            warnings: Vec::new(),
            stats: staticlint::LintStats {
                instructions: program.len(),
                blocks: 0,
                contexts: 0,
                data_objects: 0,
            },
        };
        let seed = program.label("consume").unwrap() + 3;
        let chain = causal_chain(&program, &trace, &interval, &[seed], &clean).unwrap();
        assert_eq!(chain, None);
    }

    #[test]
    fn invalid_seeds_are_dropped_not_fatal() {
        let program = tinyvm::assemble(RACY).unwrap();
        let lint = staticlint::lint(&program);
        let (trace, interval) = racy_trace(&program);
        let chain = causal_chain(&program, &trace, &interval, &[9999], &lint).unwrap();
        assert_eq!(chain, None);
    }

    #[test]
    fn hop_requires_the_victim_read_inside_the_interval() {
        let program = tinyvm::assemble(RACY).unwrap();
        let lint = staticlint::lint(&program);
        let (trace, _) = racy_trace(&program);
        // Handler-only sub-interval: the write executed inside it, but
        // the task read only happens later — no victim, no hop.
        let handler_only = EventInterval {
            irq: tinyvm::isa::irq::RX,
            start_index: 0,
            end_index: 2,
            last_run_index: None,
            start_cycle: 10,
            end_cycle: 12,
            task_count: 0,
        };
        let seed = program.label("on_rx").unwrap() + 1;
        let chain = causal_chain(&program, &trace, &handler_only, &[seed], &lint).unwrap();
        assert_eq!(chain, None);
    }

    #[test]
    fn structural_errors_are_typed() {
        let program = tinyvm::assemble(RACY).unwrap();
        let lint = staticlint::lint(&program);
        let (trace, mut interval) = racy_trace(&program);
        interval.end_index = 99;
        assert!(matches!(
            causal_chain(&program, &trace, &interval, &[0], &lint),
            Err(CausalError::IntervalOutOfBounds { .. })
        ));
        let (mut trace, interval) = racy_trace(&program);
        trace.segments.pop();
        assert!(matches!(
            causal_chain(&program, &trace, &interval, &[0], &lint),
            Err(CausalError::MalformedSegments { .. })
        ));
    }
}
