//! Windowed live mining: a rolling sample window re-ranked on demand,
//! pairing with [`sentomist_trace::OnlineExtractor`] for open-ended
//! monitoring runs where the full sample set never fits in memory.
//!
//! The window is FIFO over arrival order; ranking a window uses the same
//! scale → detect → normalize pipeline as batch mining, so a symptom that
//! occurs within the last `window` intervals surfaces exactly as it would
//! in a batch run over that span.

use crate::pipeline::{Pipeline, PipelineError};
use crate::report::Report;
use crate::sample::Sample;
use std::collections::VecDeque;

/// A rolling-window miner.
///
/// # Examples
///
/// ```
/// use sentomist_core::{monitor::WindowedMiner, Pipeline, Sample, SampleIndex};
/// # use sentomist_trace::EventInterval;
/// # fn iv() -> EventInterval {
/// #     EventInterval { irq: 0, start_index: 0, end_index: 1, last_run_index: None,
/// #         start_cycle: 0, end_cycle: 1, task_count: 0 }
/// # }
///
/// let mut miner = WindowedMiner::new(Pipeline::default_ocsvm(0.2), 128)
///     .with_min_samples(10);
/// for i in 0..30 {
///     miner.push(Sample {
///         index: SampleIndex::Seq(i),
///         interval: iv(),
///         features: vec![1.0, (i % 3) as f64],
///     });
/// }
/// let report = miner.rank()?.expect("enough samples");
/// assert_eq!(report.ranking.len(), 30);
/// # Ok::<(), sentomist_core::PipelineError>(())
/// ```
pub struct WindowedMiner {
    pipeline: Pipeline,
    window: usize,
    min_samples: usize,
    samples: VecDeque<Sample>,
    total_seen: u64,
}

impl WindowedMiner {
    /// Creates a miner retaining at most `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(pipeline: Pipeline, window: usize) -> WindowedMiner {
        assert!(window > 0, "window must be positive");
        WindowedMiner {
            pipeline,
            window,
            min_samples: 20,
            samples: VecDeque::with_capacity(window),
            total_seen: 0,
        }
    }

    /// Sets the minimum population size required before [`WindowedMiner::rank`]
    /// will produce a report (outlier detection on a handful of samples is
    /// noise). Default 20.
    pub fn with_min_samples(mut self, min_samples: usize) -> WindowedMiner {
        self.min_samples = min_samples;
        self
    }

    /// Adds a sample, evicting the oldest when the window is full.
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
        self.total_seen += 1;
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Ranks the current window, or `None` while the population is below
    /// the configured minimum.
    ///
    /// # Errors
    ///
    /// Propagates detector failures.
    pub fn rank(&self) -> Result<Option<Report>, PipelineError> {
        if self.samples.len() < self.min_samples {
            return Ok(None);
        }
        let window: Vec<Sample> = self.samples.iter().cloned().collect();
        self.pipeline.rank(window).map(Some)
    }
}

impl std::fmt::Debug for WindowedMiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedMiner")
            .field("pipeline", &self.pipeline)
            .field("window", &self.window)
            .field("retained", &self.samples.len())
            .field("total_seen", &self.total_seen)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleIndex;
    use sentomist_trace::EventInterval;

    fn sample(seq: u32, features: Vec<f64>) -> Sample {
        Sample {
            index: SampleIndex::Seq(seq),
            interval: EventInterval {
                irq: 0,
                start_index: 0,
                end_index: 1,
                last_run_index: None,
                start_cycle: 0,
                end_cycle: 1,
                task_count: 0,
            },
            features,
        }
    }

    fn miner(window: usize) -> WindowedMiner {
        WindowedMiner::new(Pipeline::default_ocsvm(0.2), window).with_min_samples(10)
    }

    #[test]
    fn below_minimum_yields_no_report() {
        let mut m = miner(100);
        for i in 0..9 {
            m.push(sample(i, vec![1.0, 2.0]));
        }
        assert!(m.rank().unwrap().is_none());
        m.push(sample(9, vec![1.0, 2.0]));
        assert!(m.rank().unwrap().is_some());
    }

    #[test]
    fn window_evicts_oldest() {
        let mut m = miner(16);
        for i in 0..40 {
            m.push(sample(i, vec![i as f64]));
        }
        assert_eq!(m.len(), 16);
        assert_eq!(m.total_seen(), 40);
        let report = m.rank().unwrap().unwrap();
        // Only the last 16 samples are present.
        assert!(report
            .ranking
            .iter()
            .all(|r| matches!(r.index, SampleIndex::Seq(s) if s >= 24)));
    }

    #[test]
    fn recent_outlier_surfaces_in_window_ranking() {
        let mut m = miner(64);
        for i in 0..50 {
            m.push(sample(i, vec![5.0 + (i % 3) as f64 * 0.01, 1.0]));
        }
        m.push(sample(50, vec![50.0, -7.0]));
        let report = m.rank().unwrap().unwrap();
        assert_eq!(report.ranking[0].index, SampleIndex::Seq(50));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        WindowedMiner::new(Pipeline::default_ocsvm(0.1), 0);
    }
}
