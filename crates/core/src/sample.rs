//! Samples: featurized event-handling intervals with human-readable
//! indices.

use sentomist_trace::{extract, CounterTable, EventInterval, ExtractError, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a sample is labeled in ranking tables — matching the three index
/// styles of the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SampleIndex {
    /// `[run, seq]` — case study I labels samples by testing run and
    /// chronological order within the run.
    RunSeq {
        /// Testing-run index (1-based in the paper).
        run: u32,
        /// Chronological order within the run (1-based).
        seq: u32,
    },
    /// Bare chronological index — case study II.
    Seq(u32),
    /// `[node, seq]` — case study III labels samples by node id and
    /// per-node chronological order.
    NodeSeq {
        /// Node id.
        node: u16,
        /// Chronological order on that node (1-based).
        seq: u32,
    },
}

impl fmt::Display for SampleIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleIndex::RunSeq { run, seq } => write!(f, "[{run}, {seq}]"),
            SampleIndex::Seq(s) => write!(f, "{s}"),
            SampleIndex::NodeSeq { node, seq } => write!(f, "[{node}, {seq}]"),
        }
    }
}

/// One featurized event-handling interval, ready for outlier detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Table label.
    pub index: SampleIndex,
    /// The underlying interval.
    pub interval: EventInterval,
    /// Raw (unscaled) instruction-counter features — Definition 4.
    pub features: Vec<f64>,
}

/// Harvests the samples of one event type from a recorded trace:
/// anatomizes the trace (Figure 4), featurizes each interval of `irq`
/// (Definition 4), and labels them via `label(seq, interval)` with `seq`
/// the 1-based chronological order.
///
/// # Errors
///
/// Propagates [`ExtractError`] for ill-formed traces.
///
/// # Examples
///
/// ```
/// # use std::sync::Arc;
/// # use tinyvm::{asm, devices::NodeConfig, node::Node};
/// # use sentomist_core::sample::{harvest, SampleIndex};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let program = Arc::new(asm::assemble("\
/// # .handler TIMER0 h
/// # main:
/// #  ldi r1, 4
/// #  out TIMER0_PERIOD, r1
/// #  ldi r1, 1
/// #  out TIMER0_CTRL, r1
/// #  ret
/// # h:
/// #  reti
/// # ")?);
/// let mut node = Node::new(program.clone(), NodeConfig::default());
/// let mut rec = sentomist_trace::Recorder::new(program.len());
/// node.run(200_000, &mut rec)?;
/// let trace = rec.into_trace();
/// let samples = harvest(&trace, tinyvm::isa::irq::TIMER0, |seq, _| {
///     SampleIndex::Seq(seq)
/// })?;
/// assert!(!samples.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn harvest(
    trace: &Trace,
    irq: u8,
    mut label: impl FnMut(u32, &EventInterval) -> SampleIndex,
) -> Result<Vec<Sample>, ExtractError> {
    let extraction = extract(trace)?;
    let table = CounterTable::new(trace);
    Ok(extraction
        .for_irq(irq)
        .into_iter()
        .enumerate()
        .map(|(i, interval)| Sample {
            index: label(i as u32 + 1, &interval),
            features: table.features(&interval),
            interval,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_display_matches_figure_5() {
        assert_eq!(
            SampleIndex::RunSeq { run: 1, seq: 76 }.to_string(),
            "[1, 76]"
        );
        assert_eq!(SampleIndex::Seq(20).to_string(), "20");
        assert_eq!(
            SampleIndex::NodeSeq { node: 8, seq: 2 }.to_string(),
            "[8, 2]"
        );
    }

    #[test]
    fn harvest_labels_sequentially() {
        use sentomist_trace::TraceEvent;
        use tinyvm::LifecycleItem;
        let items = [
            LifecycleItem::Int(0),
            LifecycleItem::Reti,
            LifecycleItem::Int(0),
            LifecycleItem::Reti,
        ];
        let trace = Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: i as u64,
                    item,
                })
                .collect(),
            segments: vec![vec![0]; 5],
            program_len: 1,
        };
        let samples = harvest(&trace, 0, |seq, _| SampleIndex::Seq(seq)).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].index, SampleIndex::Seq(1));
        assert_eq!(samples[1].index, SampleIndex::Seq(2));
    }
}
