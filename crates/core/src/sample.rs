//! Samples: featurized event-handling intervals with human-readable
//! indices.
//!
//! The primary product of harvesting is a [`SampleSet`]: per-interval
//! metadata (label + interval) alongside a dense row-major
//! [`FeatureMatrix`] holding one instruction-counter row per interval.
//! Features are written straight from the trace's counter table into the
//! matrix rows — no intermediate per-sample allocation. The per-sample
//! [`Sample`] struct remains for call sites that work with individual
//! intervals (e.g. localization).

use mlcore::FeatureMatrix;
use sentomist_trace::{extract, CounterTable, EventInterval, ExtractError, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a sample is labeled in ranking tables — matching the three index
/// styles of the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SampleIndex {
    /// `[run, seq]` — case study I labels samples by testing run and
    /// chronological order within the run.
    RunSeq {
        /// Testing-run index (1-based in the paper).
        run: u32,
        /// Chronological order within the run (1-based).
        seq: u32,
    },
    /// Bare chronological index — case study II.
    Seq(u32),
    /// `[node, seq]` — case study III labels samples by node id and
    /// per-node chronological order.
    NodeSeq {
        /// Node id.
        node: u16,
        /// Chronological order on that node (1-based).
        seq: u32,
    },
}

impl fmt::Display for SampleIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleIndex::RunSeq { run, seq } => write!(f, "[{run}, {seq}]"),
            SampleIndex::Seq(s) => write!(f, "{s}"),
            SampleIndex::NodeSeq { node, seq } => write!(f, "[{node}, {seq}]"),
        }
    }
}

/// One featurized event-handling interval, ready for outlier detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Table label.
    pub index: SampleIndex,
    /// The underlying interval.
    pub interval: EventInterval,
    /// Raw (unscaled) instruction-counter features — Definition 4.
    pub features: Vec<f64>,
}

/// Harvests the samples of one event type from a recorded trace:
/// anatomizes the trace (Figure 4), featurizes each interval of `irq`
/// (Definition 4), and labels them via `label(seq, interval)` with `seq`
/// the 1-based chronological order.
///
/// # Errors
///
/// Propagates [`ExtractError`] for ill-formed traces.
///
/// # Examples
///
/// ```
/// # use std::sync::Arc;
/// # use tinyvm::{asm, devices::NodeConfig, node::Node};
/// # use sentomist_core::sample::{harvest, SampleIndex};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let program = Arc::new(asm::assemble("\
/// # .handler TIMER0 h
/// # main:
/// #  ldi r1, 4
/// #  out TIMER0_PERIOD, r1
/// #  ldi r1, 1
/// #  out TIMER0_CTRL, r1
/// #  ret
/// # h:
/// #  reti
/// # ")?);
/// let mut node = Node::new(program.clone(), NodeConfig::default());
/// let mut rec = sentomist_trace::Recorder::new(program.len());
/// node.run(200_000, &mut rec)?;
/// let trace = rec.into_trace();
/// let samples = harvest(&trace, tinyvm::isa::irq::TIMER0, |seq, _| {
///     SampleIndex::Seq(seq)
/// })?;
/// assert!(!samples.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn harvest(
    trace: &Trace,
    irq: u8,
    mut label: impl FnMut(u32, &EventInterval) -> SampleIndex,
) -> Result<Vec<Sample>, ExtractError> {
    let extraction = extract(trace)?;
    let table = CounterTable::try_new(trace)?;
    extraction
        .for_irq(irq)
        .into_iter()
        .enumerate()
        .map(|(i, interval)| {
            Ok(Sample {
                index: label(i as u32 + 1, &interval),
                features: table.try_features(&interval)?,
                interval,
            })
        })
        .collect()
}

/// Metadata of one harvested interval: its table label and the interval
/// itself, with the features living in the owning [`SampleSet`]'s matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Table label.
    pub index: SampleIndex,
    /// The underlying interval.
    pub interval: EventInterval,
}

/// A harvested sample population: per-interval metadata plus one dense
/// feature matrix with a row per interval — the unit the rank path
/// operates on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    /// Label + interval per sample, aligned with the matrix rows.
    pub meta: Vec<SampleMeta>,
    /// Instruction-counter features, row `i` belonging to `meta[i]`.
    pub features: FeatureMatrix,
}

impl SampleSet {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// An empty set (adopts the feature width of the first appended set).
    pub fn empty() -> SampleSet {
        SampleSet {
            meta: Vec::new(),
            features: FeatureMatrix::new(0),
        }
    }

    /// Pools another set's samples onto this one — how the multi-run /
    /// multi-node case studies merge per-trace harvests into one
    /// population without unpacking any row.
    ///
    /// # Panics
    ///
    /// Panics if both sets are non-empty and their feature widths differ.
    pub fn append(&mut self, other: &SampleSet) {
        self.features.append(&other.features);
        self.meta.extend_from_slice(&other.meta);
    }

    /// Packs individually-owned samples into a set (one flat allocation).
    ///
    /// Returns `None` if the samples disagree on feature dimensionality.
    pub fn from_samples(samples: &[Sample]) -> Option<SampleSet> {
        let d = samples.first().map_or(0, |s| s.features.len());
        let mut features = FeatureMatrix::with_capacity(samples.len(), d);
        let mut meta = Vec::with_capacity(samples.len());
        for s in samples {
            if s.features.len() != d {
                return None;
            }
            features.push_row(&s.features);
            meta.push(SampleMeta {
                index: s.index,
                interval: s.interval,
            });
        }
        Some(SampleSet { meta, features })
    }

    /// Unpacks into individually-owned samples (copies each row).
    pub fn to_samples(&self) -> Vec<Sample> {
        self.meta
            .iter()
            .zip(self.features.rows_iter())
            .map(|(m, row)| Sample {
                index: m.index,
                interval: m.interval,
                features: row.to_vec(),
            })
            .collect()
    }
}

/// Harvests one event type's samples as a [`SampleSet`]: intervals are
/// featurized by writing counter rows directly into the set's dense
/// matrix ([`CounterTable::features_into`]), with zero intermediate
/// allocation per interval.
///
/// # Errors
///
/// Propagates [`ExtractError`] for ill-formed traces, including
/// structurally broken count segments
/// ([`ExtractError::Malformed`](sentomist_trace::ExtractError::Malformed)).
pub fn harvest_set(
    trace: &Trace,
    irq: u8,
    mut label: impl FnMut(u32, &EventInterval) -> SampleIndex,
) -> Result<SampleSet, ExtractError> {
    let extraction = extract(trace)?;
    let table = CounterTable::try_new(trace)?;
    let intervals = extraction.for_irq(irq);
    let mut features = FeatureMatrix::with_capacity(intervals.len(), table.dimension());
    let mut meta = Vec::with_capacity(intervals.len());
    for (i, interval) in intervals.into_iter().enumerate() {
        table.try_features_into(&interval, features.add_row())?;
        meta.push(SampleMeta {
            index: label(i as u32 + 1, &interval),
            interval,
        });
    }
    Ok(SampleSet { meta, features })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_display_matches_figure_5() {
        assert_eq!(
            SampleIndex::RunSeq { run: 1, seq: 76 }.to_string(),
            "[1, 76]"
        );
        assert_eq!(SampleIndex::Seq(20).to_string(), "20");
        assert_eq!(
            SampleIndex::NodeSeq { node: 8, seq: 2 }.to_string(),
            "[8, 2]"
        );
    }

    #[test]
    fn harvest_labels_sequentially() {
        use sentomist_trace::TraceEvent;
        use tinyvm::LifecycleItem;
        let items = [
            LifecycleItem::Int(0),
            LifecycleItem::Reti,
            LifecycleItem::Int(0),
            LifecycleItem::Reti,
        ];
        let trace = Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: i as u64,
                    item,
                })
                .collect(),
            segments: vec![vec![0]; 5],
            program_len: 1,
        };
        let samples = harvest(&trace, 0, |seq, _| SampleIndex::Seq(seq)).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].index, SampleIndex::Seq(1));
        assert_eq!(samples[1].index, SampleIndex::Seq(2));
    }

    #[test]
    fn harvest_set_matches_per_sample_harvest() {
        use sentomist_trace::TraceEvent;
        use tinyvm::LifecycleItem;
        let items = [
            LifecycleItem::Int(0),
            LifecycleItem::Reti,
            LifecycleItem::Int(0),
            LifecycleItem::Reti,
        ];
        let trace = Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: i as u64,
                    item,
                })
                .collect(),
            segments: vec![vec![3], vec![5], vec![0], vec![7], vec![1]],
            program_len: 1,
        };
        let samples = harvest(&trace, 0, |seq, _| SampleIndex::Seq(seq)).unwrap();
        let set = harvest_set(&trace, 0, |seq, _| SampleIndex::Seq(seq)).unwrap();
        assert_eq!(set.len(), samples.len());
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(set.meta[i].index, s.index);
            assert_eq!(set.meta[i].interval, s.interval);
            assert_eq!(set.features.row(i), s.features.as_slice());
        }
        // Round trips through both representations.
        let repacked = SampleSet::from_samples(&samples).unwrap();
        assert_eq!(repacked, set);
        assert_eq!(set.to_samples(), samples);
    }

    #[test]
    fn append_pools_sets_in_order() {
        let iv = EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        };
        let mk = |seq: u32, f: Vec<f64>| Sample {
            index: SampleIndex::Seq(seq),
            interval: iv,
            features: f,
        };
        let a = SampleSet::from_samples(&[mk(1, vec![1.0, 2.0])]).unwrap();
        let b = SampleSet::from_samples(&[mk(2, vec![3.0, 4.0]), mk(3, vec![5.0, 6.0])]).unwrap();
        let mut pooled = SampleSet::empty();
        pooled.append(&a);
        pooled.append(&b);
        assert_eq!(pooled.len(), 3);
        assert_eq!(pooled.meta[2].index, SampleIndex::Seq(3));
        assert_eq!(pooled.features.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_samples_rejects_ragged() {
        let iv = EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        };
        let samples = vec![
            Sample {
                index: SampleIndex::Seq(1),
                interval: iv,
                features: vec![1.0],
            },
            Sample {
                index: SampleIndex::Seq(2),
                interval: iv,
                features: vec![1.0, 2.0],
            },
        ];
        assert!(SampleSet::from_samples(&samples).is_none());
    }
}
