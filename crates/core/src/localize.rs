//! Bug localization (the paper's stated future work, Section VII):
//! correlating a suspicious interval's symptoms with program locations.
//!
//! Given the sample population and one flagged sample, each instruction is
//! scored by how far the flagged sample's count deviates from the
//! population (a robust z-score); the top deviating instructions, mapped
//! back to assembly source lines and routines, tell the developer *where*
//! the abnormal behavior happened.

use crate::causal::CausalChain;
use crate::sample::{Sample, SampleSet};
use serde::{Deserialize, Serialize};
use staticlint::{LintReport, WarningKind};
use tinyvm::Program;

/// One instruction implicated in an outlier's deviation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImplicatedInstruction {
    /// Instruction index (PC).
    pub pc: u16,
    /// Deviation z-score (always ≥ 0; larger = more anomalous).
    pub z_score: f64,
    /// The flagged sample's count at this instruction.
    pub observed: f64,
    /// Population mean count.
    pub expected: f64,
    /// 1-based assembly source line, if the program knows it.
    pub source_line: Option<u32>,
    /// Enclosing routine label, if any.
    pub routine: Option<String>,
}

/// Ranks instructions by the flagged sample's deviation from the
/// population mean, descending; instructions whose counts match the
/// population (z below `min_z`) are omitted.
///
/// # Examples
///
/// ```
/// use sentomist_core::{localize, Sample, SampleIndex};
/// # use sentomist_trace::EventInterval;
/// # fn iv() -> EventInterval {
/// #     EventInterval { irq: 0, start_index: 0, end_index: 1, last_run_index: None,
/// #         start_cycle: 0, end_cycle: 1, task_count: 0 }
/// # }
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = tinyvm::assemble("main:\n nop\n nop\n ret\n")?;
/// let mut samples: Vec<Sample> = (0..20)
///     .map(|i| Sample { index: SampleIndex::Seq(i), interval: iv(),
///                       features: vec![1.0, 1.0, 1.0] })
///     .collect();
/// // The outlier executed instruction 1 five times instead of once.
/// samples.push(Sample { index: SampleIndex::Seq(20), interval: iv(),
///                       features: vec![1.0, 5.0, 1.0] });
/// let hits = localize(&samples, 20, &program, 1.0);
/// assert_eq!(hits[0].pc, 1);
/// # Ok(())
/// # }
/// ```
///
/// `flagged` indexes into `samples`. The population statistics include the
/// flagged sample itself (with hundreds of samples the bias is negligible,
/// and it keeps the estimator well-defined for tiny populations).
///
/// # Panics
///
/// Panics if `flagged` is out of range or samples are ragged.
pub fn localize(
    samples: &[Sample],
    flagged: usize,
    program: &Program,
    min_z: f64,
) -> Vec<ImplicatedInstruction> {
    let set = SampleSet::from_samples(samples).expect("ragged samples");
    localize_set(&set, flagged, program, min_z)
}

/// [`localize`] over a [`SampleSet`]: the same deviation ranking, reading
/// instruction columns straight out of the set's dense feature matrix.
///
/// # Panics
///
/// Panics if `flagged` is out of range.
pub fn localize_set(
    set: &SampleSet,
    flagged: usize,
    program: &Program,
    min_z: f64,
) -> Vec<ImplicatedInstruction> {
    let d = set.features.cols();
    let n = set.len() as f64;
    let samples = &set.features;
    assert!(flagged < set.len(), "flagged sample out of range");
    let mut result = Vec::new();
    for pc in 0..d {
        let mean: f64 = samples.rows_iter().map(|s| s[pc]).sum::<f64>() / n;
        let var: f64 = samples
            .rows_iter()
            .map(|s| {
                let dv = s[pc] - mean;
                dv * dv
            })
            .sum::<f64>()
            / n;
        // Floor the deviation at a quarter count: never-varying
        // instructions that suddenly execute get a finite but large score
        // (a one-count deviation on a constant dimension scores z = 4).
        let std = var.sqrt().max(0.25);
        let observed = samples.get(flagged, pc);
        let z = (observed - mean).abs() / std;
        if z >= min_z {
            let pc16 = pc as u16;
            result.push(ImplicatedInstruction {
                pc: pc16,
                z_score: z,
                observed,
                expected: mean,
                source_line: program.source_line(pc16),
                routine: program.enclosing_label(pc16).map(str::to_owned),
            });
        }
    }
    result.sort_by(|a, b| {
        b.z_score
            .partial_cmp(&a.z_score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });
    result
}

/// A dynamically implicated instruction joined against the static
/// analyzer's findings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorroboratedInstruction {
    /// The dynamic hit.
    pub hit: ImplicatedInstruction,
    /// Kinds of the static warnings this hit corroborates (empty when the
    /// site is dynamically suspicious but statically clean).
    pub warning_kinds: Vec<WarningKind>,
    /// Anchor PCs of the matched warnings.
    pub warning_pcs: Vec<u16>,
    /// Whether the site appears in the interval's reconstructed
    /// [`CausalChain`] — the third evidence stream, absent (`false`)
    /// when no chain was computed.
    #[serde(default)]
    pub in_causal_chain: bool,
}

impl CorroboratedInstruction {
    /// Whether at least one static warning backs this hit.
    pub fn corroborated(&self) -> bool {
        !self.warning_kinds.is_empty()
    }
}

/// Fuses dynamic localization with static analysis: joins each
/// implicated instruction against a [`LintReport`] and re-ranks so that
/// sites that are *both* dynamically deviant and statically flagged come
/// first (then by z-score, then by PC).
///
/// A hit matches a warning when its PC is the warning's anchor, appears
/// among the warning's related instructions, or falls in the same
/// routine as the anchor — handler bugs often implicate the instructions
/// *around* the racy access rather than the access itself.
pub fn corroborate(
    hits: &[ImplicatedInstruction],
    lint: &LintReport,
) -> Vec<CorroboratedInstruction> {
    corroborate_with_chain(hits, lint, None)
}

/// [`corroborate`] with a third evidence stream: hits on the interval's
/// reconstructed [`CausalChain`] outrank equally corroborated hits off
/// it. Ordering is corroborated first, then chain membership, then
/// z-score descending, then PC ascending — so the existing
/// corroborated-first invariant is preserved and the chain only breaks
/// ties within an evidence tier.
pub fn corroborate_with_chain(
    hits: &[ImplicatedInstruction],
    lint: &LintReport,
    chain: Option<&CausalChain>,
) -> Vec<CorroboratedInstruction> {
    let mut out: Vec<CorroboratedInstruction> = hits
        .iter()
        .map(|hit| {
            let mut warning_kinds = Vec::new();
            let mut warning_pcs = Vec::new();
            for w in &lint.warnings {
                let same_routine = w.routine.is_some() && w.routine == hit.routine;
                if w.pc == hit.pc || w.related_pcs.contains(&hit.pc) || same_routine {
                    warning_kinds.push(w.kind);
                    warning_pcs.push(w.pc);
                }
            }
            warning_kinds.dedup();
            warning_pcs.dedup();
            CorroboratedInstruction {
                in_causal_chain: chain.is_some_and(|c| c.contains(hit.pc)),
                hit: hit.clone(),
                warning_kinds,
                warning_pcs,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.corroborated()
            .cmp(&a.corroborated())
            .then(b.in_causal_chain.cmp(&a.in_causal_chain))
            .then(
                b.hit
                    .z_score
                    .partial_cmp(&a.hit.z_score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.hit.pc.cmp(&b.hit.pc))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleIndex;
    use sentomist_trace::EventInterval;

    fn iv() -> EventInterval {
        EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        }
    }

    fn sample(features: Vec<f64>) -> Sample {
        Sample {
            index: SampleIndex::Seq(0),
            interval: iv(),
            features,
        }
    }

    #[test]
    fn implicates_the_deviant_instruction() {
        let program = tinyvm::assemble("main:\n nop\n nop\n nop\n ret\n").unwrap();
        let mut samples: Vec<Sample> = (0..20).map(|_| sample(vec![1.0, 1.0, 5.0, 1.0])).collect();
        // The flagged sample executed instruction 1 twice (the paper's
        // double-execution symptom).
        samples.push(sample(vec![1.0, 2.0, 5.0, 1.0]));
        let hits = localize(&samples, 20, &program, 0.5);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].pc, 1);
        assert_eq!(hits[0].observed, 2.0);
        assert!(hits[0].expected < 1.1);
        assert_eq!(hits[0].routine.as_deref(), Some("main"));
        assert_eq!(hits[0].source_line, Some(3));
    }

    #[test]
    fn matching_counts_not_implicated() {
        let program = tinyvm::assemble("main:\n nop\n ret\n").unwrap();
        let samples: Vec<Sample> = (0..10).map(|_| sample(vec![3.0, 1.0])).collect();
        let hits = localize(&samples, 0, &program, 0.5);
        assert!(hits.is_empty());
    }

    #[test]
    fn corroboration_promotes_statically_flagged_sites() {
        // `dead:` is unreachable, so the linter anchors a warning at pc 2;
        // a dynamic hit there must outrank a higher-z but statically clean
        // hit at pc 1.
        let program = tinyvm::assemble("main:\n nop\n halt\ndead:\n nop\n halt\n").unwrap();
        let lint = staticlint::lint(&program);
        assert_eq!(lint.warnings.len(), 1);
        let hit = |pc: u16, z: f64| ImplicatedInstruction {
            pc,
            z_score: z,
            observed: 1.0,
            expected: 0.0,
            source_line: program.source_line(pc),
            routine: program.enclosing_label(pc).map(str::to_owned),
        };
        let fused = corroborate(&[hit(1, 9.0), hit(2, 3.0)], &lint);
        assert_eq!(fused[0].hit.pc, 2);
        assert!(fused[0].corroborated());
        assert_eq!(fused[0].warning_kinds, vec![WarningKind::UnreachableCode]);
        assert!(!fused[1].corroborated());
    }

    #[test]
    fn tie_breaking_when_flagged_sites_share_a_rank() {
        // Two statically flagged sites (both in the unreachable `dead:`
        // routine) share the same z-score: the tie must break by PC
        // ascending, deterministically, with corroborated sites still
        // ahead of a clean site of identical z.
        let program = tinyvm::assemble("main:\n nop\n halt\ndead:\n nop\n nop\n halt\n").unwrap();
        let lint = staticlint::lint(&program);
        assert_eq!(lint.warnings.len(), 1, "premise: one unreachable warning");
        let hit = |pc: u16, z: f64| ImplicatedInstruction {
            pc,
            z_score: z,
            observed: 1.0,
            expected: 0.0,
            source_line: program.source_line(pc),
            routine: program.enclosing_label(pc).map(str::to_owned),
        };
        // Feed the hits out of pc order to prove the sort does the work.
        let fused = corroborate(&[hit(4, 4.0), hit(1, 4.0), hit(2, 4.0), hit(3, 4.0)], &lint);
        let pcs: Vec<u16> = fused.iter().map(|c| c.hit.pc).collect();
        // dead: spans pcs 2..=4; pc 1 (main) is statically clean.
        assert_eq!(pcs, vec![2, 3, 4, 1]);
        assert!(fused[0].corroborated() && fused[1].corroborated());
        assert!(!fused[3].corroborated());
        // Determinism: a permuted input yields the identical order.
        let again = corroborate(&[hit(3, 4.0), hit(2, 4.0), hit(4, 4.0), hit(1, 4.0)], &lint);
        assert_eq!(fused, again);
    }

    #[test]
    fn chain_membership_breaks_ties_within_a_tier() {
        let program = tinyvm::assemble("main:\n nop\n halt\ndead:\n nop\n nop\n halt\n").unwrap();
        let lint = staticlint::lint(&program);
        let hit = |pc: u16, z: f64| ImplicatedInstruction {
            pc,
            z_score: z,
            observed: 1.0,
            expected: 0.0,
            source_line: program.source_line(pc),
            routine: program.enclosing_label(pc).map(str::to_owned),
        };
        let chain = CausalChain {
            seeds: vec![3],
            hops: Vec::new(),
            sliced_executed: vec![3],
        };
        // pcs 2 and 3 are both corroborated with equal z; only 3 is on
        // the chain, so 3 must come first — but a corroborated site must
        // still outrank a chain-only site (pc 1 is clean).
        let fused = corroborate_with_chain(
            &[hit(1, 4.0), hit(2, 4.0), hit(3, 4.0)],
            &lint,
            Some(&chain),
        );
        let pcs: Vec<u16> = fused.iter().map(|c| c.hit.pc).collect();
        assert_eq!(pcs, vec![3, 2, 1]);
        assert!(fused[0].in_causal_chain);
        assert!(!fused[1].in_causal_chain);
    }

    #[test]
    fn results_sorted_by_z_descending() {
        let program = tinyvm::assemble("main:\n nop\n nop\n ret\n").unwrap();
        let mut samples: Vec<Sample> = (0..30).map(|_| sample(vec![1.0, 1.0, 1.0])).collect();
        samples.push(sample(vec![2.0, 9.0, 1.0]));
        let hits = localize(&samples, 30, &program, 0.5);
        assert!(hits.len() >= 2);
        assert!(hits[0].z_score >= hits[1].z_score);
        assert_eq!(hits[0].pc, 1);
    }
}
