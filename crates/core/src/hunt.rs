//! Invariant-driven bug-bounty hunting: seeded scenario campaigns whose
//! output is a *test verdict*, not a figure.
//!
//! A hunt fans seeded scenarios over the supervised worker pool
//! ([`run_supervised_typed`](crate::supervise::run_supervised_typed)),
//! mines every run, and checks each run's [`Evidence`] against an
//! explicit [invariant registry](registry). Violations aggregate into a
//! [`HuntReport`]: per-invariant detection rates, the violating seeds,
//! and a copy-pasteable `hunt --replay --seed N` repro line per bug —
//! the shape of a VOPR-style fuzzing bug report.
//!
//! The registry checks two kinds of properties:
//!
//! * **application correctness** — [`InvariantId::TransientSymptomFree`]
//!   fails exactly when an injected transient bug manifests in a run, so
//!   its violation rate on a buggy variant *is* the bug's detection
//!   rate, and a fixed variant must never trip it;
//! * **pipeline self-consistency** — top-k ranking of known-buggy
//!   intervals, no corroborated negative outlier on fixed variants
//!   (the end-to-end false-positive check), agreement between the
//!   static analyzer and dynamic localization, and re-mine determinism.
//!   A healthy pipeline never trips these; any violation is a bug in
//!   Sentomist itself.
//!
//! Everything here is deterministic: records are sorted by seed, no
//! wall-clock times are serialized, and the rendered report is
//! byte-identical for every worker-thread count.

use crate::campaign::{RunError, RunOutcome, Verdict};
use crate::supervise::{run_supervised_typed, RunContext, RunFailure, SupervisorOptions};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;
use std::sync::Arc;

/// The invariants a hunt checks after mining each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InvariantId {
    /// No event-handling interval exhibits an injected transient-bug
    /// symptom (ground-truth oracle). Violated exactly when the bug
    /// under test manifests — the hunt's actual bug detector.
    TransientSymptomFree,
    /// When ground-truth symptoms exist, the best-ranked one must sit
    /// within the top *k* of the suspicion ranking.
    KnownBuggyIntervalRanksTopK,
    /// A fixed (race-free) variant must produce neither ground-truth
    /// symptoms nor a negative-score outlier that corroborates a static
    /// warning — the end-to-end false-positive check.
    FixedVariantHasNoNegativeOutliers,
    /// Static analysis and dynamic evidence must agree: a triggered run
    /// must localize to a statically flagged site, and a fixed variant
    /// must lint clean.
    StaticlintDynamicAgreement,
    /// Re-mining the recorded traces must reproduce the live outcome
    /// (digest, verdict, ranking) bit for bit.
    MiningDeterminism,
    /// When causal-chain reconstruction ran: a chain emitted for a
    /// triggered run must cover the injected bug site, and a fixed
    /// variant must emit no chain at all.
    CausalChainContainsBugSite,
}

/// Every invariant, in registry (and report) order.
pub const INVARIANTS: [InvariantId; 6] = [
    InvariantId::TransientSymptomFree,
    InvariantId::KnownBuggyIntervalRanksTopK,
    InvariantId::FixedVariantHasNoNegativeOutliers,
    InvariantId::StaticlintDynamicAgreement,
    InvariantId::MiningDeterminism,
    InvariantId::CausalChainContainsBugSite,
];

impl InvariantId {
    /// Stable snake_case identifier (JSON encoding, report headings).
    pub fn slug(self) -> &'static str {
        match self {
            InvariantId::TransientSymptomFree => "transient_symptom_free",
            InvariantId::KnownBuggyIntervalRanksTopK => "known_buggy_interval_ranks_top_k",
            InvariantId::FixedVariantHasNoNegativeOutliers => {
                "fixed_variant_has_no_negative_outliers"
            }
            InvariantId::StaticlintDynamicAgreement => "staticlint_dynamic_agreement",
            InvariantId::MiningDeterminism => "mining_determinism",
            InvariantId::CausalChainContainsBugSite => "causal_chain_contains_bug_site",
        }
    }

    /// One-line statement of the property.
    pub fn description(self) -> &'static str {
        match self {
            InvariantId::TransientSymptomFree => {
                "no event-handling interval exhibits the injected transient-bug symptom"
            }
            InvariantId::KnownBuggyIntervalRanksTopK => {
                "the best-ranked ground-truth symptom sits within the ranking's top k"
            }
            InvariantId::FixedVariantHasNoNegativeOutliers => {
                "a fixed variant yields no symptoms and no corroborated negative outlier"
            }
            InvariantId::StaticlintDynamicAgreement => {
                "static warnings and dynamic localization corroborate each other"
            }
            InvariantId::MiningDeterminism => {
                "re-mining the recorded traces reproduces the live outcome bit for bit"
            }
            InvariantId::CausalChainContainsBugSite => {
                "the reconstructed causal chain covers the injected bug site \
                 (and fixed variants emit no chain)"
            }
        }
    }

    /// Parses a slug back into its id.
    pub fn parse(slug: &str) -> Option<InvariantId> {
        INVARIANTS.into_iter().find(|i| i.slug() == slug)
    }
}

impl Serialize for InvariantId {
    fn to_value(&self) -> Value {
        Value::Str(self.slug().to_string())
    }
}

impl Deserialize for InvariantId {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                InvariantId::parse(s).ok_or_else(|| DeError::custom("unknown invariant slug"))
            }
            _ => Err(DeError::expected("string", "InvariantId")),
        }
    }
}

/// Tunable thresholds for the invariant checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantPolicy {
    /// `k` for [`InvariantId::KnownBuggyIntervalRanksTopK`].
    pub top_k: usize,
}

impl Default for InvariantPolicy {
    fn default() -> Self {
        InvariantPolicy { top_k: 3 }
    }
}

/// What one mined scenario run presents to the invariant registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The run's mined campaign outcome (symptoms = ground-truth count).
    pub outcome: RunOutcome,
    /// Whether the scenario ran the fixed (race-free) program variant.
    pub fixed_variant: bool,
    /// Samples with a negative normalized suspicion score. Informational
    /// only: an OC-SVM can legitimately score *every* sample of a
    /// healthy run negative (no positive anchor survives normalization),
    /// so no invariant thresholds this count.
    pub negative_scores: usize,
    /// The ν the detector actually ran with (after any small-sample
    /// clamping) — the rarity yardstick for the top-k invariant.
    pub nu: f64,
    /// Static-analyzer warning count for the program(s) under test.
    pub static_warnings: usize,
    /// Did dynamic localization of the top suspect implicate at least
    /// one statically flagged site? On triggered runs the suspect is the
    /// best-ranked ground-truth symptom; on clean fixed runs it is the
    /// top-ranked negative outlier (the false-positive probe). `None`
    /// when localization did not run (nothing to localize).
    pub corroborated: Option<bool>,
    /// Did a second mining pass over the recorded traces reproduce the
    /// live outcome exactly?
    pub remine_matches: bool,
    /// Whether causal-chain reconstruction emitted a chain for the run's
    /// localized suspect. `None` when localization did not run (nothing
    /// to slice from).
    pub chain_emitted: Option<bool>,
    /// Whether the emitted chain covers the case's injected bug site
    /// (vacuously `false` when no chain was emitted).
    pub chain_contains_bug_site: bool,
    /// Human-readable description of the symptom when triggered (used in
    /// violation messages), e.g. "nested ADC interrupt".
    pub symptom_note: String,
}

impl Evidence {
    /// Fraction of samples scoring negative (0 for an empty run).
    pub fn negative_fraction(&self) -> f64 {
        if self.outcome.samples == 0 {
            0.0
        } else {
            self.negative_scores as f64 / self.outcome.samples as f64
        }
    }

    /// Whether the run's symptoms are rare enough for outlier mining to
    /// be answerable for them: an OC-SVM with parameter ν can only
    /// carve out about `ν · samples` outliers, so once symptoms exceed
    /// that capacity they are the *norm*, not deviations, and the top-k
    /// ranking guarantee is vacuous by the paper's own premise
    /// (transient bugs manifest in a small minority of intervals).
    pub fn symptoms_are_rare(&self) -> bool {
        self.outcome.symptoms > 0
            && (self.outcome.symptoms as f64) <= (self.nu * self.outcome.samples as f64).ceil()
    }
}

/// One invariant violation observed on one seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: InvariantId,
    /// The violating scenario seed.
    pub seed: u64,
    /// What exactly went wrong.
    pub message: String,
}

struct InvariantDef {
    id: InvariantId,
    applies: fn(&Evidence) -> bool,
    check: fn(&Evidence, &InvariantPolicy) -> Option<String>,
}

/// The invariant registry: which invariants apply to a run's evidence
/// and how each is checked. Order is the report order.
fn registry() -> [InvariantDef; 6] {
    [
        InvariantDef {
            id: InvariantId::TransientSymptomFree,
            applies: |_| true,
            check: |ev, _| {
                (ev.outcome.symptoms > 0).then(|| {
                    format!(
                        "{} of {} interval(s) exhibit the symptom ({})",
                        ev.outcome.symptoms, ev.outcome.samples, ev.symptom_note
                    )
                })
            },
        },
        InvariantDef {
            id: InvariantId::KnownBuggyIntervalRanksTopK,
            applies: Evidence::symptoms_are_rare,
            check: |ev, policy| match ev.outcome.buggy_ranks.first() {
                Some(&best) if best <= policy.top_k => None,
                Some(&best) => Some(format!(
                    "best symptom rank {best} is outside the top {}",
                    policy.top_k
                )),
                None => Some("symptom intervals missing from the ranking".to_string()),
            },
        },
        InvariantDef {
            id: InvariantId::FixedVariantHasNoNegativeOutliers,
            applies: |ev| ev.fixed_variant,
            check: |ev, _| {
                if ev.outcome.symptoms > 0 {
                    Some(format!(
                        "fixed variant produced {} ground-truth symptom(s)",
                        ev.outcome.symptoms
                    ))
                } else if ev.corroborated == Some(true) {
                    Some(format!(
                        "top-ranked negative outlier ({} of {} samples score negative) \
                         corroborates a static warning on the fixed variant",
                        ev.negative_scores, ev.outcome.samples
                    ))
                } else {
                    None
                }
            },
        },
        InvariantDef {
            id: InvariantId::StaticlintDynamicAgreement,
            applies: |_| true,
            check: |ev, _| {
                if ev.fixed_variant {
                    return (ev.static_warnings > 0).then(|| {
                        format!(
                            "static analyzer reports {} warning(s) on the fixed variant",
                            ev.static_warnings
                        )
                    });
                }
                if ev.outcome.verdict != Verdict::Triggered {
                    return None;
                }
                if ev.static_warnings == 0 {
                    return Some(
                        "run triggered the bug but the static analyzer sees nothing".to_string(),
                    );
                }
                match ev.corroborated {
                    Some(false) => Some(
                        "localization of the best-ranked symptom implicates no \
                         statically flagged site"
                            .to_string(),
                    ),
                    _ => None,
                }
            },
        },
        InvariantDef {
            id: InvariantId::MiningDeterminism,
            applies: |_| true,
            check: |ev, _| {
                (!ev.remine_matches)
                    .then(|| "re-mined outcome diverges from the live outcome".to_string())
            },
        },
        InvariantDef {
            id: InvariantId::CausalChainContainsBugSite,
            applies: |ev| ev.chain_emitted.is_some(),
            check: |ev, _| {
                if ev.fixed_variant {
                    return (ev.chain_emitted == Some(true)).then(|| {
                        "causal chain emitted on the fixed variant \
                         (warning-gated pruning failed)"
                            .to_string()
                    });
                }
                // A triggered run may legitimately lack a chain — the
                // concurrent writer of the stale value need not have
                // executed before the first symptom — but a chain that
                // *was* emitted for a triggered run must cover the bug.
                if ev.outcome.verdict != Verdict::Triggered {
                    return None;
                }
                (ev.chain_emitted == Some(true) && !ev.chain_contains_bug_site)
                    .then(|| "causal chain misses the injected bug site".to_string())
            },
        },
    ]
}

/// Runs the full registry against one run's evidence, returning which
/// invariants applied and every violation found.
pub fn check_invariants(
    evidence: &Evidence,
    policy: &InvariantPolicy,
) -> (Vec<InvariantId>, Vec<Violation>) {
    let mut checked = Vec::new();
    let mut violations = Vec::new();
    for def in registry() {
        if !(def.applies)(evidence) {
            continue;
        }
        checked.push(def.id);
        if let Some(message) = (def.check)(evidence, policy) {
            violations.push(Violation {
                invariant: def.id,
                seed: evidence.outcome.seed,
                message,
            });
        }
    }
    (checked, violations)
}

/// One completed hunt iteration: the mined outcome plus the registry's
/// verdicts on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// The scenario seed (`campaign_seed + iteration`).
    pub seed: u64,
    /// The mined campaign outcome.
    pub outcome: RunOutcome,
    /// Invariants that applied to this run.
    pub checked: Vec<InvariantId>,
    /// Violations found (empty on a healthy run).
    pub violations: Vec<Violation>,
}

/// Per-invariant aggregation over one hunt target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantStats {
    /// The invariant.
    pub invariant: InvariantId,
    /// Runs the invariant applied to.
    pub checked: usize,
    /// Runs that violated it.
    pub violations: usize,
    /// `violations / checked` (0 when never applicable).
    pub detection_rate: f64,
    /// Violating seeds, ascending.
    pub violating_seeds: Vec<u64>,
}

/// The aggregated result of hunting one target (one case × variant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetReport {
    /// Target name, e.g. `oscilloscope`.
    pub target: String,
    /// Program variant, `buggy` or `fixed`.
    pub variant: String,
    /// Repro command template; `{seed}` is replaced per violation.
    pub repro_template: String,
    /// Iterations that produced an outcome.
    pub runs: usize,
    /// Runs whose mined verdict was `Triggered`.
    pub triggered: usize,
    /// Per-invariant statistics, registry order.
    pub invariants: Vec<InvariantStats>,
    /// Every iteration, ascending by seed.
    pub records: Vec<IterationRecord>,
    /// Seeds that failed to run (after retries), ascending by seed.
    pub errors: Vec<RunError>,
}

impl TargetReport {
    /// Aggregates the supervised pool's output for one target.
    pub fn from_records(
        target: &str,
        variant: &str,
        repro_template: &str,
        records: Vec<IterationRecord>,
        errors: Vec<RunError>,
    ) -> TargetReport {
        let mut invariants: Vec<InvariantStats> = INVARIANTS
            .into_iter()
            .map(|invariant| InvariantStats {
                invariant,
                checked: 0,
                violations: 0,
                detection_rate: 0.0,
                violating_seeds: Vec::new(),
            })
            .collect();
        let mut triggered = 0;
        for record in &records {
            if record.outcome.verdict == Verdict::Triggered {
                triggered += 1;
            }
            for stat in invariants.iter_mut() {
                if record.checked.contains(&stat.invariant) {
                    stat.checked += 1;
                }
                if record
                    .violations
                    .iter()
                    .any(|v| v.invariant == stat.invariant)
                {
                    stat.violations += 1;
                    stat.violating_seeds.push(record.seed);
                }
            }
        }
        for stat in invariants.iter_mut() {
            if stat.checked > 0 {
                stat.detection_rate = stat.violations as f64 / stat.checked as f64;
            }
        }
        TargetReport {
            target: target.to_string(),
            variant: variant.to_string(),
            repro_template: repro_template.to_string(),
            runs: records.len(),
            triggered,
            invariants,
            records,
            errors,
        }
    }

    /// Repro command for one seed.
    pub fn repro(&self, seed: u64) -> String {
        self.repro_template.replace("{seed}", &seed.to_string())
    }

    /// All violations of this target, registry order then seed order.
    pub fn violations(&self) -> Vec<&Violation> {
        let mut all: Vec<&Violation> = self
            .records
            .iter()
            .flat_map(|r| r.violations.iter())
            .collect();
        all.sort_by_key(|v| (v.invariant, v.seed));
        all
    }
}

/// The hunt's aggregated artifact: rendered to `BUG_REPORT.md` and
/// serialized to `bug_report.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HuntReport {
    /// The campaign seed the scenario seeds were derived from.
    pub campaign_seed: u64,
    /// Iterations per target.
    pub iterations: u64,
    /// `k` used by the top-k ranking invariant.
    pub top_k: usize,
    /// One report per hunted target.
    pub targets: Vec<TargetReport>,
}

impl HuntReport {
    /// Total invariant violations across all targets.
    pub fn violation_count(&self) -> usize {
        self.targets
            .iter()
            .map(|t| t.records.iter().map(|r| r.violations.len()).sum::<usize>())
            .sum()
    }

    /// Total failed runs across all targets.
    pub fn error_count(&self) -> usize {
        self.targets.iter().map(|t| t.errors.len()).sum()
    }

    /// Renders the kimberlite-style `BUG_REPORT.md` document:
    /// an executive summary, then one section per target with
    /// per-invariant detection rates, violating seeds and a repro line.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Bug Report — invariant-driven hunt\n");
        let _ = writeln!(
            out,
            "Campaign seed `{:#x}` ({}), {} iteration(s) per target, \
             top-k = {}.\n",
            self.campaign_seed, self.campaign_seed, self.iterations, self.top_k
        );
        let _ = writeln!(out, "## Executive summary\n");
        let _ = writeln!(
            out,
            "| target | variant | runs | triggered | violations | failed runs |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for t in &self.targets {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                t.target,
                t.variant,
                t.runs,
                t.triggered,
                t.records.iter().map(|r| r.violations.len()).sum::<usize>(),
                t.errors.len()
            );
        }
        let _ = writeln!(out);
        for t in &self.targets {
            let _ = writeln!(out, "## {} ({})\n", t.target, t.variant);
            for stat in &t.invariants {
                if stat.checked == 0 {
                    continue;
                }
                let _ = writeln!(out, "### `{}`\n", stat.invariant.slug());
                let _ = writeln!(out, "{}.\n", stat.invariant.description());
                let _ = writeln!(
                    out,
                    "- Detection rate: {}/{} checked run(s) ({:.1}%)",
                    stat.violations,
                    stat.checked,
                    100.0 * stat.detection_rate
                );
                if stat.violations == 0 {
                    let _ = writeln!(out, "- No violations.\n");
                    continue;
                }
                let seeds: Vec<String> = stat.violating_seeds.iter().map(u64::to_string).collect();
                let _ = writeln!(out, "- Violating seeds: {}", seeds.join(", "));
                let first = stat.violating_seeds[0];
                if let Some(v) = t
                    .records
                    .iter()
                    .find(|r| r.seed == first)
                    .and_then(|r| r.violations.iter().find(|v| v.invariant == stat.invariant))
                {
                    let _ = writeln!(out, "- Example (seed {first}): {}", v.message);
                }
                let _ = writeln!(out, "- Reproduction:\n");
                let _ = writeln!(out, "      sentomist {}\n", t.repro(first));
            }
            if !t.errors.is_empty() {
                let _ = writeln!(out, "### failed runs\n");
                for e in &t.errors {
                    let _ = writeln!(
                        out,
                        "- seed {} [{}, {} attempt(s)]: {}",
                        e.seed,
                        e.kind.as_str(),
                        e.attempts,
                        e.message
                    );
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

/// What hunting one target through the supervised pool produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetOutcome {
    /// One record per completed iteration, ascending by seed.
    pub records: Vec<IterationRecord>,
    /// Seeds that ultimately failed, ascending by seed.
    pub errors: Vec<RunError>,
}

/// Fans the scenario seeds of one target over the supervised worker pool
/// (panic isolation, watchdog, deterministic retry — see
/// [`supervise`](crate::supervise)) and collects the iteration records,
/// sorted by seed so the result is identical for every thread count.
pub fn run_hunt_target<F>(seeds: &[u64], options: &SupervisorOptions, job: Arc<F>) -> TargetOutcome
where
    F: Fn(&RunContext) -> Result<IterationRecord, RunFailure> + Send + Sync + 'static,
{
    let result = run_supervised_typed(seeds, options, job, |_| {});
    TargetOutcome {
        records: result.outcomes.into_iter().map(|(_, r)| r).collect(),
        errors: result.errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::FailureKind;

    fn outcome(seed: u64, symptoms: usize, ranks: Vec<usize>) -> RunOutcome {
        RunOutcome {
            seed,
            samples: 40,
            symptoms,
            buggy_ranks: ranks,
            verdict: if symptoms > 0 {
                Verdict::Triggered
            } else {
                Verdict::Clean
            },
            trace_digest: format!("{seed:016x}"),
            wall_time_ms: 0,
        }
    }

    fn healthy_buggy_evidence(seed: u64) -> Evidence {
        Evidence {
            outcome: outcome(seed, 2, vec![1, 2]),
            fixed_variant: false,
            negative_scores: 2,
            nu: 0.05,
            static_warnings: 1,
            corroborated: Some(true),
            remine_matches: true,
            chain_emitted: Some(true),
            chain_contains_bug_site: true,
            symptom_note: "nested ADC interrupt".into(),
        }
    }

    #[test]
    fn slugs_round_trip() {
        for id in INVARIANTS {
            assert_eq!(InvariantId::parse(id.slug()), Some(id));
            let v = Serialize::to_value(&id);
            assert_eq!(InvariantId::from_value(&v).unwrap(), id);
        }
        assert_eq!(InvariantId::parse("nope"), None);
    }

    #[test]
    fn triggered_run_trips_only_the_symptom_invariant() {
        let (checked, violations) =
            check_invariants(&healthy_buggy_evidence(7), &InvariantPolicy::default());
        assert!(checked.contains(&InvariantId::TransientSymptomFree));
        assert!(checked.contains(&InvariantId::KnownBuggyIntervalRanksTopK));
        assert!(!checked.contains(&InvariantId::FixedVariantHasNoNegativeOutliers));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, InvariantId::TransientSymptomFree);
        assert_eq!(violations[0].seed, 7);
    }

    #[test]
    fn clean_fixed_run_is_violation_free() {
        let ev = Evidence {
            outcome: outcome(3, 0, vec![]),
            fixed_variant: true,
            negative_scores: 2,
            nu: 0.05,
            static_warnings: 0,
            corroborated: None,
            remine_matches: true,
            chain_emitted: None,
            chain_contains_bug_site: false,
            symptom_note: String::new(),
        };
        let (checked, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert!(violations.is_empty(), "{violations:?}");
        assert!(checked.contains(&InvariantId::FixedVariantHasNoNegativeOutliers));
        assert!(!checked.contains(&InvariantId::KnownBuggyIntervalRanksTopK));
        assert!(!checked.contains(&InvariantId::CausalChainContainsBugSite));
    }

    #[test]
    fn pipeline_self_check_invariants_fire() {
        let mut ev = healthy_buggy_evidence(9);
        ev.outcome.buggy_ranks = vec![17];
        ev.corroborated = Some(false);
        ev.remine_matches = false;
        let (_, violations) = check_invariants(&ev, &InvariantPolicy::default());
        let kinds: Vec<InvariantId> = violations.iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&InvariantId::KnownBuggyIntervalRanksTopK));
        assert!(kinds.contains(&InvariantId::StaticlintDynamicAgreement));
        assert!(kinds.contains(&InvariantId::MiningDeterminism));
        // A fixed variant whose top negative outlier corroborates a
        // static warning is an end-to-end false positive.
        let ev = Evidence {
            outcome: outcome(4, 0, vec![]),
            fixed_variant: true,
            negative_scores: 3,
            nu: 0.05,
            static_warnings: 0,
            corroborated: Some(true),
            remine_matches: true,
            chain_emitted: None,
            chain_contains_bug_site: false,
            symptom_note: String::new(),
        };
        let (_, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0].invariant,
            InvariantId::FixedVariantHasNoNegativeOutliers
        );
        // But an uncorroborated (even all-negative) clean fixed run is
        // healthy: score signs alone carry no alarm.
        let ev = Evidence {
            negative_scores: 40,
            corroborated: Some(false),
            ..ev
        };
        let (_, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn causal_chain_invariant_gates_on_emission() {
        // Healthy triggered run with a bug-site-covering chain: clean.
        let ev = healthy_buggy_evidence(11);
        let (checked, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert!(checked.contains(&InvariantId::CausalChainContainsBugSite));
        assert!(!violations
            .iter()
            .any(|v| v.invariant == InvariantId::CausalChainContainsBugSite));
        // Triggered but chainless is *not* a violation: the concurrent
        // writer may never have executed before the first symptom, so
        // there is dynamically nothing to anchor a hop with.
        let ev = Evidence {
            chain_emitted: Some(false),
            chain_contains_bug_site: false,
            ..healthy_buggy_evidence(12)
        };
        let (checked, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert!(checked.contains(&InvariantId::CausalChainContainsBugSite));
        assert!(!violations
            .iter()
            .any(|v| v.invariant == InvariantId::CausalChainContainsBugSite));
        // Chain emitted but missing the bug site: violation.
        let ev = Evidence {
            chain_contains_bug_site: false,
            ..healthy_buggy_evidence(13)
        };
        let (_, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert!(violations
            .iter()
            .any(|v| v.invariant == InvariantId::CausalChainContainsBugSite));
        // A fixed variant that emits a chain is a pruning failure.
        let ev = Evidence {
            outcome: outcome(14, 0, vec![]),
            fixed_variant: true,
            negative_scores: 0,
            nu: 0.05,
            static_warnings: 0,
            corroborated: Some(false),
            remine_matches: true,
            chain_emitted: Some(true),
            chain_contains_bug_site: false,
            symptom_note: String::new(),
        };
        let (_, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert!(violations
            .iter()
            .any(|v| v.invariant == InvariantId::CausalChainContainsBugSite));
        // And one that emits none is clean on this invariant.
        let ev = Evidence {
            chain_emitted: Some(false),
            ..ev
        };
        let (_, violations) = check_invariants(&ev, &InvariantPolicy::default());
        assert!(!violations
            .iter()
            .any(|v| v.invariant == InvariantId::CausalChainContainsBugSite));
    }

    #[test]
    fn report_aggregates_rates_and_renders_repro_lines() {
        let records = vec![
            IterationRecord {
                seed: 100,
                outcome: outcome(100, 0, vec![]),
                checked: vec![
                    InvariantId::TransientSymptomFree,
                    InvariantId::MiningDeterminism,
                ],
                violations: vec![],
            },
            IterationRecord {
                seed: 101,
                outcome: outcome(101, 1, vec![1]),
                checked: vec![
                    InvariantId::TransientSymptomFree,
                    InvariantId::KnownBuggyIntervalRanksTopK,
                    InvariantId::MiningDeterminism,
                ],
                violations: vec![Violation {
                    invariant: InvariantId::TransientSymptomFree,
                    seed: 101,
                    message: "1 of 40 interval(s) exhibit the symptom (test)".into(),
                }],
            },
        ];
        let errors = vec![RunError {
            seed: 102,
            message: "boom".into(),
            kind: FailureKind::Panic,
            attempts: 2,
        }];
        let target = TargetReport::from_records(
            "oscilloscope",
            "buggy",
            "hunt --case 1 --replay --seed {seed}",
            records,
            errors,
        );
        assert_eq!(target.runs, 2);
        assert_eq!(target.triggered, 1);
        let symptom = &target.invariants[0];
        assert_eq!(symptom.invariant, InvariantId::TransientSymptomFree);
        assert_eq!((symptom.checked, symptom.violations), (2, 1));
        assert!((symptom.detection_rate - 0.5).abs() < 1e-12);
        assert_eq!(symptom.violating_seeds, vec![101]);
        assert_eq!(target.repro(101), "hunt --case 1 --replay --seed 101");

        let report = HuntReport {
            campaign_seed: 0xBEEF,
            iterations: 2,
            top_k: 3,
            targets: vec![target],
        };
        assert_eq!(report.violation_count(), 1);
        assert_eq!(report.error_count(), 1);
        let md = report.to_markdown();
        assert!(md.contains("# Bug Report"), "{md}");
        assert!(md.contains("transient_symptom_free"), "{md}");
        assert!(md.contains("50.0%"), "{md}");
        assert!(
            md.contains("sentomist hunt --case 1 --replay --seed 101"),
            "{md}"
        );
        assert!(md.contains("failed runs"), "{md}");
        // And the artifact round-trips through JSON.
        let json = serde_json::to_string(&report).unwrap();
        let back: HuntReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
