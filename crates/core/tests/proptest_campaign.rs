//! Property tests for the campaign summary reduction.
//!
//! `summarize` feeds the campaign documents that the determinism tests
//! compare byte for byte, so it must be a *pure set reduction*: invariant
//! under any permutation of the outcomes, and exactly the hand-computable
//! sums/counts/extrema on any input.

use proptest::collection::vec;
use proptest::prelude::*;
use sentomist_core::campaign::{summarize, RunOutcome, Verdict};

/// One arbitrary outcome. Symptom counts and ranks are coupled the way
/// real jobs produce them: a clean run has zero symptoms and no ranks; a
/// triggered run has 1..=4 symptoms with sorted 1-based ranks.
fn outcome_strategy() -> BoxedStrategy<RunOutcome> {
    (0u64..10_000, 1usize..400, 0usize..5, vec(1usize..50, 0..4))
        .prop_map(|(seed, samples, symptoms, extra_ranks)| {
            let triggered = symptoms > 0;
            let mut buggy_ranks: Vec<usize> = if triggered {
                let mut r = vec![1 + seed as usize % 10];
                r.extend(extra_ranks);
                r
            } else {
                Vec::new()
            };
            buggy_ranks.sort_unstable();
            RunOutcome {
                seed,
                samples,
                symptoms,
                buggy_ranks,
                verdict: if triggered {
                    Verdict::Triggered
                } else {
                    Verdict::Clean
                },
                trace_digest: format!("{:016x}", seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                wall_time_ms: 0,
            }
        })
        .boxed()
}

/// Deterministic in-place Fisher-Yates driven by a splitmix64 stream, so
/// the permutation is itself a pure function of the generated `key`.
fn permute<T>(items: &mut [T], mut key: u64) {
    let mut next = move || {
        key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = key;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #[test]
    fn summary_is_invariant_under_permutation(
        outcomes in vec(outcome_strategy(), 0..40),
        key in 0u64..u64::MAX,
    ) {
        let baseline = summarize(&outcomes);
        let mut shuffled = outcomes.clone();
        permute(&mut shuffled, key);
        prop_assert_eq!(summarize(&shuffled), baseline);
    }

    #[test]
    fn summary_matches_hand_computation(
        outcomes in vec(outcome_strategy(), 0..40),
    ) {
        let s = summarize(&outcomes);
        let runs = outcomes.len();
        let triggered = outcomes.iter()
            .filter(|o| o.verdict == Verdict::Triggered)
            .count();
        prop_assert_eq!(s.runs, runs);
        prop_assert_eq!(s.triggered, triggered);
        prop_assert_eq!(
            s.total_samples,
            outcomes.iter().map(|o| o.samples).sum::<usize>()
        );
        prop_assert_eq!(
            s.total_symptoms,
            outcomes.iter().map(|o| o.symptoms).sum::<usize>()
        );
        prop_assert_eq!(
            s.min_samples,
            outcomes.iter().map(|o| o.samples).min().unwrap_or(0)
        );
        prop_assert_eq!(
            s.max_samples,
            outcomes.iter().map(|o| o.samples).max().unwrap_or(0)
        );
        if runs == 0 {
            prop_assert_eq!(s.trigger_rate, 0.0);
            prop_assert_eq!(s.mean_samples, 0.0);
        } else {
            prop_assert_eq!(s.trigger_rate, triggered as f64 / runs as f64);
            prop_assert_eq!(s.mean_samples, s.total_samples as f64 / runs as f64);
        }
        // Rank buckets are nested and bounded by the triggered count:
        // every triggered outcome has a best rank, so top-10 ⊆ triggered.
        prop_assert!(s.hits_top1 <= s.hits_top3);
        prop_assert!(s.hits_top3 <= s.hits_top10);
        prop_assert!(s.hits_top10 <= s.triggered);
        let top3 = outcomes.iter()
            .filter(|o| o.buggy_ranks.first().is_some_and(|&r| r <= 3))
            .count();
        prop_assert_eq!(s.hits_top3, top3);
    }
}
