//! Small dense linear-algebra helpers: vector ops, covariance, a Jacobi
//! eigensolver for symmetric matrices, and Cholesky factorization.
//!
//! Everything operates on `&[f64]` vectors and dense row-major
//! [`FeatureMatrix`] storage; dimensions in this project are small
//! (instruction counters of a few hundred entries), so clarity beats
//! blocking and SIMD — but the flat layout keeps every inner loop on
//! contiguous memory.
//!
//! Index-based loops are deliberate here: matrix kernels read much more
//! naturally with explicit `(i, j, k)` indices than with iterator chains.
#![allow(clippy::needless_range_loop)]

use crate::matrix::FeatureMatrix;
use std::error::Error;
use std::fmt;

/// Numeric failure in a linear-algebra routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Input matrix was empty or not square.
    BadShape,
    /// Cholesky factorization hit a non-positive pivot (matrix not
    /// positive definite).
    NotPositiveDefinite,
    /// The Jacobi sweep limit was reached before convergence.
    NoConvergence,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::BadShape => f.write_str("empty or non-square matrix"),
            LinalgError::NotPositiveDefinite => f.write_str("matrix is not positive definite"),
            LinalgError::NoConvergence => f.write_str("eigensolver did not converge"),
        }
    }
}

impl Error for LinalgError {}

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Mean of the matrix's rows.
///
/// # Panics
///
/// Panics if the matrix has no rows.
pub fn mean(rows: &FeatureMatrix) -> Vec<f64> {
    assert!(!rows.is_empty());
    let d = rows.cols();
    let mut m = vec![0.0; d];
    for r in rows.rows_iter() {
        for (mi, &v) in m.iter_mut().zip(r) {
            *mi += v;
        }
    }
    let n = rows.rows() as f64;
    for mi in &mut m {
        *mi /= n;
    }
    m
}

/// Sample covariance matrix (divisor `n`, not `n-1`, matching the
/// population form used by the detectors; shrinkage dominates the
/// difference in practice).
///
/// # Panics
///
/// Panics if `mean.len() != rows.cols()`.
pub fn covariance(rows: &FeatureMatrix, mean: &[f64]) -> FeatureMatrix {
    let d = mean.len();
    assert_eq!(d, rows.cols());
    let n = rows.rows() as f64;
    let mut cov = FeatureMatrix::zeros(d, d);
    for r in rows.rows_iter() {
        for i in 0..d {
            let di = r[i] - mean[i];
            let ci = cov.row_mut(i);
            for j in i..d {
                ci[j] += di * (r[j] - mean[j]);
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            let v = cov.get(i, j) / n;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    cov
}

fn require_square(matrix: &FeatureMatrix) -> Result<usize, LinalgError> {
    let n = matrix.rows();
    if n == 0 || matrix.cols() != n {
        return Err(LinalgError::BadShape);
    }
    Ok(n)
}

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// row `k` of the eigenvector matrix is the unit eigenvector of
/// `eigenvalues[k]`.
///
/// # Errors
///
/// [`LinalgError::BadShape`] for empty/non-square input;
/// [`LinalgError::NoConvergence`] if 100 sweeps do not reduce the
/// off-diagonal mass below tolerance.
pub fn jacobi_eigen(matrix: &FeatureMatrix) -> Result<(Vec<f64>, FeatureMatrix), LinalgError> {
    let n = require_square(matrix)?;
    let mut a = matrix.clone();
    // v starts as identity; columns accumulate the rotations.
    let mut v = FeatureMatrix::zeros(n, n);
    for i in 0..n {
        v.set(i, i, 1.0);
    }

    let off = |a: &FeatureMatrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let x = a.get(i, j);
                s += x * x;
            }
        }
        s
    };
    let scale: f64 = (0..n).map(|i| a.get(i, i).abs()).sum::<f64>().max(1e-300);
    let tol = 1e-20 * scale * scale;

    for _sweep in 0..100 {
        if off(&a) <= tol {
            let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
                .map(|k| (a.get(k, k), (0..n).map(|r| v.get(r, k)).collect()))
                .collect();
            pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut vals = Vec::with_capacity(n);
            let mut vecs = FeatureMatrix::with_capacity(n, n);
            for (val, vec) in pairs {
                vals.push(val);
                vecs.push_row(&vec);
            }
            return Ok((vals, vecs));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a.get(p, q).abs() < 1e-300 {
                    continue;
                }
                let theta = (a.get(q, q) - a.get(p, p)) / (2.0 * a.get(p, q));
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence)
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower-triangular factor `L`.
///
/// # Errors
///
/// [`LinalgError::BadShape`] for empty/non-square input;
/// [`LinalgError::NotPositiveDefinite`] on a non-positive pivot.
pub fn cholesky(matrix: &FeatureMatrix) -> Result<FeatureMatrix, LinalgError> {
    let n = require_square(matrix)?;
    let mut l = FeatureMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = matrix.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `L Lᵀ x = b` given the Cholesky factor `L`.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn cholesky_solve(l: &FeatureMatrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        let li = l.row(i);
        for k in 0..i {
            sum -= li[k] * y[k];
        }
        y[i] = sum / li[i];
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Top-`k` eigenpairs of a symmetric positive-semidefinite matrix by
/// power iteration with deflation — O(k · iters · n²), usable where the
/// full Jacobi sweep (O(n³) per sweep) is too slow (e.g. Gram matrices of
/// a thousand samples).
///
/// Returns `(eigenvalues, eigenvectors)` in descending eigenvalue order
/// with eigenvectors as matrix rows; iteration stops early for
/// eigenvalues that vanish (rank-deficient input), so fewer than `k`
/// pairs may be returned.
///
/// # Errors
///
/// [`LinalgError::BadShape`] for empty or non-square input.
pub fn top_eigen_psd(
    matrix: &FeatureMatrix,
    k: usize,
    iterations: usize,
) -> Result<(Vec<f64>, FeatureMatrix), LinalgError> {
    let n = require_square(matrix)?;
    let mut deflated = matrix.clone();
    let mut vals = Vec::new();
    let mut vecs = FeatureMatrix::new(n);
    let trace: f64 = (0..n).map(|i| matrix.get(i, i)).sum();
    let negligible = (trace / n as f64).abs() * 1e-10 + 1e-300;
    for round in 0..k.min(n) {
        // Deterministic, non-degenerate start vector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 2654435761 + round * 40503) % 1000) as f64 / 1000.0)
            .collect();
        let norm = dot(&v, &v).sqrt();
        for x in &mut v {
            *x /= norm;
        }
        let mut lambda = 0.0;
        for _ in 0..iterations {
            // w = A v.
            let mut w = vec![0.0; n];
            for (i, wi) in w.iter_mut().enumerate() {
                *wi = dot(deflated.row(i), &v);
            }
            lambda = dot(&w, &v);
            let norm = dot(&w, &w).sqrt();
            if norm < negligible {
                lambda = 0.0;
                break;
            }
            for x in &mut w {
                *x /= norm;
            }
            v = w;
        }
        if lambda <= negligible {
            break;
        }
        // Deflate: A <- A - lambda v vᵀ.
        for i in 0..n {
            let di = deflated.row_mut(i);
            for j in 0..n {
                di[j] -= lambda * v[i] * v[j];
            }
        }
        vals.push(lambda);
        vecs.push_row(&v);
    }
    Ok((vals, vecs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    fn m(rows: &[Vec<f64>]) -> FeatureMatrix {
        FeatureMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn mean_of_rows() {
        let v = mean(&m(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        assert_eq!(v, vec![2.0, 3.0]);
    }

    #[test]
    fn covariance_of_correlated_data() {
        let rows = m(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let mu = mean(&rows);
        let c = covariance(&rows, &mu);
        // var(x) = 2/3, cov(x, 2x) = 4/3, var(2x) = 8/3.
        assert!(approx(c.get(0, 0), 2.0 / 3.0, 1e-12));
        assert!(approx(c.get(0, 1), 4.0 / 3.0, 1e-12));
        assert!(approx(c.get(1, 1), 8.0 / 3.0, 1e-12));
        assert_eq!(c.get(0, 1), c.get(1, 0));
    }

    #[test]
    fn jacobi_on_diagonal_matrix() {
        let (vals, _) = jacobi_eigen(&m(&[vec![3.0, 0.0], vec![0.0, 1.0]])).unwrap();
        assert!(approx(vals[0], 3.0, 1e-12));
        assert!(approx(vals[1], 1.0, 1e-12));
    }

    #[test]
    fn jacobi_known_eigensystem() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1), (1,-1).
        let (vals, vecs) = jacobi_eigen(&m(&[vec![2.0, 1.0], vec![1.0, 2.0]])).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        let v0 = vecs.row(0);
        assert!(approx(v0[0].abs(), v0[1].abs(), 1e-10));
        // Orthonormality.
        assert!(approx(dot(vecs.row(0), vecs.row(0)), 1.0, 1e-10));
        assert!(approx(dot(vecs.row(0), vecs.row(1)), 0.0, 1e-10));
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = m(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let (vals, vecs) = jacobi_eigen(&a).unwrap();
        // A = Σ λ_k v_k v_kᵀ.
        for i in 0..3 {
            for j in 0..3 {
                let recon: f64 = (0..3)
                    .map(|k| vals[k] * vecs.get(k, i) * vecs.get(k, j))
                    .sum();
                assert!(approx(recon, a.get(i, j), 1e-9), "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = m(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ]);
        let (vals, _) = jacobi_eigen(&a).unwrap();
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
    }

    #[test]
    fn cholesky_round_trip() {
        let a = m(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ]);
        let l = cholesky(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let recon: f64 = (0..3).map(|k| l.get(i, k) * l.get(j, k)).sum();
                assert!(approx(recon, a.get(i, j), 1e-12));
            }
        }
        // Solve A x = b and verify.
        let b = vec![1.0, 2.0, 3.0];
        let x = cholesky_solve(&l, &b);
        for i in 0..3 {
            let ax: f64 = (0..3).map(|k| a.get(i, k) * x[k]).sum();
            assert!(approx(ax, b[i], 1e-10));
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = m(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(LinalgError::NotPositiveDefinite));
    }

    #[test]
    fn top_eigen_matches_jacobi_on_small_matrix() {
        let a = m(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let (jv, jvec) = jacobi_eigen(&a).unwrap();
        let (pv, pvec) = top_eigen_psd(&a, 3, 500).unwrap();
        for k in 0..3 {
            assert!(
                approx(pv[k], jv[k], 1e-6),
                "lambda_{k}: {} vs {}",
                pv[k],
                jv[k]
            );
            // Eigenvectors match up to sign.
            let d = dot(pvec.row(k), jvec.row(k)).abs();
            assert!(approx(d, 1.0, 1e-5), "v_{k} alignment {d}");
        }
    }

    #[test]
    fn top_eigen_stops_at_rank() {
        // Rank-1 matrix: v vᵀ with v = (1,2,2), eigenvalue ||v||² = 9.
        let v = [1.0, 2.0, 2.0];
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..3).map(|j| v[i] * v[j]).collect())
            .collect();
        let (vals, vecs) = top_eigen_psd(&m(&rows), 3, 300).unwrap();
        assert_eq!(vals.len(), 1, "rank-1 input yields one pair: {vals:?}");
        assert!(approx(vals[0], 9.0, 1e-8));
        assert_eq!(vecs.rows(), 1);
    }

    #[test]
    fn top_eigen_bad_shape() {
        let rect = m(&[vec![1.0, 2.0]]);
        assert_eq!(top_eigen_psd(&rect, 1, 10), Err(LinalgError::BadShape));
    }

    #[test]
    fn bad_shapes_rejected() {
        let rect = m(&[vec![1.0, 2.0]]);
        assert_eq!(jacobi_eigen(&rect), Err(LinalgError::BadShape));
        assert_eq!(cholesky(&rect), Err(LinalgError::BadShape));
    }
}
