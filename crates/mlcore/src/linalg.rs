//! Small dense linear-algebra helpers: vector ops, covariance, a Jacobi
//! eigensolver for symmetric matrices, and Cholesky factorization.
//!
//! Everything operates on `Vec<f64>`/row-major `Vec<Vec<f64>>`; dimensions
//! in this project are small (instruction counters of a few hundred
//! entries), so clarity beats blocking and SIMD.
//!
//! Index-based loops are deliberate here: matrix kernels read much more
//! naturally with explicit `(i, j, k)` indices than with iterator chains.
#![allow(clippy::needless_range_loop)]

use std::error::Error;
use std::fmt;

/// Numeric failure in a linear-algebra routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Input matrix was empty or ragged.
    BadShape,
    /// Cholesky factorization hit a non-positive pivot (matrix not
    /// positive definite).
    NotPositiveDefinite,
    /// The Jacobi sweep limit was reached before convergence.
    NoConvergence,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::BadShape => f.write_str("empty or ragged matrix"),
            LinalgError::NotPositiveDefinite => f.write_str("matrix is not positive definite"),
            LinalgError::NoConvergence => f.write_str("eigensolver did not converge"),
        }
    }
}

impl Error for LinalgError {}

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Mean of a set of row vectors.
///
/// # Panics
///
/// Panics if `rows` is empty or ragged.
pub fn mean(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty());
    let d = rows[0].len();
    let mut m = vec![0.0; d];
    for r in rows {
        assert_eq!(r.len(), d, "ragged rows");
        for (mi, &v) in m.iter_mut().zip(r) {
            *mi += v;
        }
    }
    let n = rows.len() as f64;
    for mi in &mut m {
        *mi /= n;
    }
    m
}

/// Sample covariance matrix (divisor `n`, not `n-1`, matching the
/// population form used by the detectors; shrinkage dominates the
/// difference in practice).
///
/// # Panics
///
/// Panics if `rows` is empty or ragged.
pub fn covariance(rows: &[Vec<f64>], mean: &[f64]) -> Vec<Vec<f64>> {
    let d = mean.len();
    let n = rows.len() as f64;
    let mut cov = vec![vec![0.0; d]; d];
    for r in rows {
        for i in 0..d {
            let di = r[i] - mean[i];
            for j in i..d {
                cov[i][j] += di * (r[j] - mean[j]);
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            cov[i][j] /= n;
            cov[j][i] = cov[i][j];
        }
    }
    cov
}

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// `eigenvectors[k]` is the unit eigenvector of `eigenvalues[k]`.
///
/// # Errors
///
/// [`LinalgError::BadShape`] for empty/ragged input;
/// [`LinalgError::NoConvergence`] if 100 sweeps do not reduce the
/// off-diagonal mass below tolerance.
pub fn jacobi_eigen(matrix: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<Vec<f64>>), LinalgError> {
    let n = matrix.len();
    if n == 0 || matrix.iter().any(|r| r.len() != n) {
        return Err(LinalgError::BadShape);
    }
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    // v starts as identity; columns accumulate the rotations.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    let off = |a: &[Vec<f64>]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += a[i][j] * a[i][j];
            }
        }
        s
    };
    let scale: f64 = (0..n).map(|i| a[i][i].abs()).sum::<f64>().max(1e-300);
    let tol = 1e-20 * scale * scale;

    for _sweep in 0..100 {
        if off(&a) <= tol {
            let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
                .map(|k| (a[k][k], (0..n).map(|r| v[r][k]).collect()))
                .collect();
            pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
            let (vals, vecs) = pairs.into_iter().unzip();
            return Ok((vals, vecs));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for row in v.iter_mut() {
                    let vkp = row[p];
                    let vkq = row[q];
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence)
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower-triangular factor `L`.
///
/// # Errors
///
/// [`LinalgError::BadShape`] for empty/ragged input;
/// [`LinalgError::NotPositiveDefinite`] on a non-positive pivot.
pub fn cholesky(matrix: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
    let n = matrix.len();
    if n == 0 || matrix.iter().any(|r| r.len() != n) {
        return Err(LinalgError::BadShape);
    }
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = matrix[i][j];
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    Ok(l)
}

/// Solves `L Lᵀ x = b` given the Cholesky factor `L`.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn cholesky_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = l.len();
    assert_eq!(b.len(), n);
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * y[k];
        }
        y[i] = sum / l[i][i];
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    x
}

/// Top-`k` eigenpairs of a symmetric positive-semidefinite matrix by
/// power iteration with deflation — O(k · iters · n²), usable where the
/// full Jacobi sweep (O(n³) per sweep) is too slow (e.g. Gram matrices of
/// a thousand samples).
///
/// Returns `(eigenvalues, eigenvectors)` in descending eigenvalue order;
/// iteration stops early for eigenvalues that vanish (rank-deficient
/// input), so fewer than `k` pairs may be returned.
///
/// # Errors
///
/// [`LinalgError::BadShape`] for empty or ragged input.
pub fn top_eigen_psd(
    matrix: &[Vec<f64>],
    k: usize,
    iterations: usize,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), LinalgError> {
    let n = matrix.len();
    if n == 0 || matrix.iter().any(|r| r.len() != n) {
        return Err(LinalgError::BadShape);
    }
    let mut deflated: Vec<Vec<f64>> = matrix.to_vec();
    let mut vals = Vec::new();
    let mut vecs: Vec<Vec<f64>> = Vec::new();
    let trace: f64 = (0..n).map(|i| matrix[i][i]).sum();
    let negligible = (trace / n as f64).abs() * 1e-10 + 1e-300;
    for round in 0..k.min(n) {
        // Deterministic, non-degenerate start vector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 2654435761 + round * 40503) % 1000) as f64 / 1000.0)
            .collect();
        let norm = dot(&v, &v).sqrt();
        for x in &mut v {
            *x /= norm;
        }
        let mut lambda = 0.0;
        for _ in 0..iterations {
            // w = A v.
            let mut w = vec![0.0; n];
            for (i, wi) in w.iter_mut().enumerate() {
                *wi = dot(&deflated[i], &v);
            }
            lambda = dot(&w, &v);
            let norm = dot(&w, &w).sqrt();
            if norm < negligible {
                lambda = 0.0;
                break;
            }
            for x in &mut w {
                *x /= norm;
            }
            v = w;
        }
        if lambda <= negligible {
            break;
        }
        // Deflate: A <- A - lambda v vᵀ.
        for i in 0..n {
            for j in 0..n {
                deflated[i][j] -= lambda * v[i] * v[j];
            }
        }
        vals.push(lambda);
        vecs.push(v);
    }
    Ok((vals, vecs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn mean_of_rows() {
        let m = mean(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m, vec![2.0, 3.0]);
    }

    #[test]
    fn covariance_of_correlated_data() {
        let rows = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        let m = mean(&rows);
        let c = covariance(&rows, &m);
        // var(x) = 2/3, cov(x, 2x) = 4/3, var(2x) = 8/3.
        assert!(approx(c[0][0], 2.0 / 3.0, 1e-12));
        assert!(approx(c[0][1], 4.0 / 3.0, 1e-12));
        assert!(approx(c[1][1], 8.0 / 3.0, 1e-12));
        assert_eq!(c[0][1], c[1][0]);
    }

    #[test]
    fn jacobi_on_diagonal_matrix() {
        let (vals, _) = jacobi_eigen(&[vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(approx(vals[0], 3.0, 1e-12));
        assert!(approx(vals[1], 1.0, 1e-12));
    }

    #[test]
    fn jacobi_known_eigensystem() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1), (1,-1).
        let (vals, vecs) = jacobi_eigen(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        let v0 = &vecs[0];
        assert!(approx(v0[0].abs(), v0[1].abs(), 1e-10));
        // Orthonormality.
        assert!(approx(dot(&vecs[0], &vecs[0]), 1.0, 1e-10));
        assert!(approx(dot(&vecs[0], &vecs[1]), 0.0, 1e-10));
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ];
        let (vals, vecs) = jacobi_eigen(&a).unwrap();
        // A = Σ λ_k v_k v_kᵀ.
        for i in 0..3 {
            for j in 0..3 {
                let recon: f64 = (0..3).map(|k| vals[k] * vecs[k][i] * vecs[k][j]).sum();
                assert!(approx(recon, a[i][j], 1e-9), "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ];
        let (vals, _) = jacobi_eigen(&a).unwrap();
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
    }

    #[test]
    fn cholesky_round_trip() {
        let a = vec![
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ];
        let l = cholesky(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let recon: f64 = (0..3).map(|k| l[i][k] * l[j][k]).sum();
                assert!(approx(recon, a[i][j], 1e-12));
            }
        }
        // Solve A x = b and verify.
        let b = vec![1.0, 2.0, 3.0];
        let x = cholesky_solve(&l, &b);
        for i in 0..3 {
            let ax: f64 = (0..3).map(|k| a[i][k] * x[k]).sum();
            assert!(approx(ax, b[i], 1e-10));
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 1.0]]; // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(LinalgError::NotPositiveDefinite));
    }

    #[test]
    fn top_eigen_matches_jacobi_on_small_matrix() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ];
        let (jv, jvec) = jacobi_eigen(&a).unwrap();
        let (pv, pvec) = top_eigen_psd(&a, 3, 500).unwrap();
        for k in 0..3 {
            assert!(
                approx(pv[k], jv[k], 1e-6),
                "lambda_{k}: {} vs {}",
                pv[k],
                jv[k]
            );
            // Eigenvectors match up to sign.
            let d = dot(&pvec[k], &jvec[k]).abs();
            assert!(approx(d, 1.0, 1e-5), "v_{k} alignment {d}");
        }
    }

    #[test]
    fn top_eigen_stops_at_rank() {
        // Rank-1 matrix: v vᵀ with v = (1,2,2), eigenvalue ||v||² = 9.
        let v = [1.0, 2.0, 2.0];
        let a: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..3).map(|j| v[i] * v[j]).collect())
            .collect();
        let (vals, vecs) = top_eigen_psd(&a, 3, 300).unwrap();
        assert_eq!(vals.len(), 1, "rank-1 input yields one pair: {vals:?}");
        assert!(approx(vals[0], 9.0, 1e-8));
        assert_eq!(vecs.len(), 1);
    }

    #[test]
    fn top_eigen_bad_shape() {
        assert_eq!(top_eigen_psd(&[], 1, 10), Err(LinalgError::BadShape));
    }

    #[test]
    fn bad_shapes_rejected() {
        assert_eq!(jacobi_eigen(&[]), Err(LinalgError::BadShape));
        assert_eq!(jacobi_eigen(&[vec![1.0, 2.0]]), Err(LinalgError::BadShape));
        assert_eq!(cholesky(&[]), Err(LinalgError::BadShape));
    }
}
