//! Rank-averaging detector ensemble — an extension beyond the paper,
//! motivated by a measured weakness: when a transient bug fires often
//! enough that its symptom intervals form a dense cluster, density-based
//! detectors (one-class SVM, kNN, KDE) absorb the cluster as a second
//! normal mode, while the global-covariance Mahalanobis detector still
//! flags it; conversely, plain PCA can be masked where the others are
//! fine. Averaging the detectors' *rank percentiles* (not their
//! incomparable raw scores) keeps the symptoms near the top as long as
//! at least some members see them.

use crate::detector::{rank_ascending, MlError, OutlierDetector};
use crate::matrix::FeatureMatrix;
use crate::{KnnDetector, MahalanobisDetector, OneClassSvm};

/// An ensemble scoring each sample by its mean rank percentile across
/// member detectors (0 = unanimously most suspicious).
///
/// # Examples
///
/// ```
/// use mlcore::{EnsembleDetector, FeatureMatrix, OutlierDetector, rank_ascending};
///
/// let mut rows: Vec<Vec<f64>> =
///     (0..30).map(|i| vec![(i % 5) as f64 * 0.1, 0.0]).collect();
/// rows.push(vec![7.0, -7.0]);
/// let samples = FeatureMatrix::from_rows(&rows)?;
/// let scores = EnsembleDetector::committee(0.1).score(&samples)?;
/// assert_eq!(rank_ascending(&scores)[0], 30);
/// # Ok::<(), mlcore::MlError>(())
/// ```
pub struct EnsembleDetector {
    members: Vec<Box<dyn OutlierDetector>>,
}

impl EnsembleDetector {
    /// Creates an ensemble from explicit members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn OutlierDetector>>) -> EnsembleDetector {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        EnsembleDetector { members }
    }

    /// The default committee: one-class SVM (boundary-based), Mahalanobis
    /// (global covariance) and kNN (local density) — three different
    /// failure modes.
    pub fn committee(nu: f64) -> EnsembleDetector {
        EnsembleDetector::new(vec![
            Box::new(OneClassSvm::with_nu(nu)),
            Box::new(MahalanobisDetector::default()),
            Box::new(KnnDetector::default()),
        ])
    }

    /// Number of member detectors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Converts scores to rank percentiles in `[0, 1]`, giving *tied* samples
/// the mean percentile of their tie group. Ties are detected with a
/// tolerance relative to the score magnitude, so a member whose scores
/// are pure numerical noise (all values within rounding of one another)
/// contributes a flat 0.5 to everyone instead of an index-ordered ramp
/// that would drown the informative members.
fn tie_aware_percentiles(scores: &[f64]) -> Vec<(usize, f64)> {
    let l = scores.len();
    if l <= 1 {
        return scores.iter().enumerate().map(|(i, _)| (i, 0.0)).collect();
    }
    let order = rank_ascending(scores);
    let max_abs = scores.iter().fold(0.0f64, |m, s| m.max(s.abs()));
    let tol = 1e-9 * max_abs.max(1.0);
    let mut out = Vec::with_capacity(l);
    let mut group_start = 0usize;
    while group_start < l {
        let mut group_end = group_start;
        while group_end + 1 < l && scores[order[group_end + 1]] - scores[order[group_end]] <= tol {
            group_end += 1;
        }
        let mean_rank = (group_start + group_end) as f64 / 2.0;
        let pct = mean_rank / (l - 1) as f64;
        for &idx in &order[group_start..=group_end] {
            out.push((idx, pct));
        }
        group_start = group_end + 1;
    }
    out
}

impl std::fmt::Debug for EnsembleDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleDetector")
            .field(
                "members",
                &self.members.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl OutlierDetector for EnsembleDetector {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let l = samples.rows();
        let mut mean_percentile = vec![0.0f64; l];
        for member in &self.members {
            let scores = member.score(samples)?;
            for (idx, pct) in tie_aware_percentiles(&scores) {
                mean_percentile[idx] += pct / self.members.len() as f64;
            }
        }
        Ok(mean_percentile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::rank_ascending;

    #[test]
    fn committee_finds_a_plain_outlier() {
        let mut pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i % 3) as f64 * 0.1])
            .collect();
        pts.push(vec![8.0, -8.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = EnsembleDetector::committee(0.1).score(&pts).unwrap();
        assert_eq!(rank_ascending(&scores)[0], 30);
    }

    #[test]
    fn one_dissenting_member_cannot_bury_a_unanimous_top() {
        // Member A ranks sample 0 first; member B ranks it last; the
        // ensemble places it mid-pack — never silently last.
        struct Fixed(Vec<f64>);
        impl OutlierDetector for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn score(&self, _s: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
                Ok(self.0.clone())
            }
        }
        let a = Fixed(vec![-1.0, 0.0, 1.0, 2.0]);
        let b = Fixed(vec![2.0, 0.0, 1.0, -1.0]);
        let ensemble = EnsembleDetector::new(vec![Box::new(a), Box::new(b)]);
        let pts = FeatureMatrix::from_rows(&vec![vec![0.0]; 4]).unwrap();
        let scores = ensemble.score(&pts).unwrap();
        // Samples 0 and 3 tie mid-pack; 1 is unanimously second.
        assert!((scores[0] - scores[3]).abs() < 1e-12);
        assert!(scores[1] < scores[0]);
    }

    #[test]
    fn percentiles_bounded() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let pts = FeatureMatrix::from_rows(&rows).unwrap();
        let scores = EnsembleDetector::committee(0.3).score(&pts).unwrap();
        for s in scores {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        EnsembleDetector::new(Vec::new());
    }
}
