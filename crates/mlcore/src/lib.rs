//! # mlcore — outlier detection for Sentomist's symptom mining
//!
//! Implements Section V-C of ["Sentomist: Unveiling Transient Sensor
//! Network Bugs via Symptom Mining"](https://doi.org/10.1109/ICDCS.2010.75)
//! from scratch:
//!
//! * [`OneClassSvm`] — the paper's default detector: Schölkopf's one-class
//!   ν-SVM solved by sequential minimal optimization with
//!   maximal-violating-pair selection (the same dual LIBSVM solves);
//! * [`PcaDetector`], [`KfdDetector`] (the two methods §VI-E names),
//!   plus [`KnnDetector`], [`MahalanobisDetector`] and [`KdeDetector`] —
//!   alternative plug-ins behind the common [`OutlierDetector`] trait;
//! * [`Scaler`] — min-max feature scaling (the `svm-scale` step);
//! * [`normalize_scores`] / [`rank_ascending`] — the paper's Figure-5
//!   score normalization (largest positive score = 1) and suspicion
//!   ranking (ascending; lowest first).
//!
//! All detectors are deterministic: identical inputs yield identical
//! scores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod ensemble;
pub mod evaluation;
pub mod kde;
pub mod kernel;
pub mod kfd;
pub mod knn;
pub mod linalg;
pub mod mahalanobis;
pub mod matrix;
pub mod ocsvm;
pub mod pca;
pub mod scale;

pub use detector::{normalize_scores, rank_ascending, MlError, OutlierDetector};
pub use ensemble::EnsembleDetector;
pub use evaluation::{
    average_precision, expected_random_inspections, inspections_until_all, inspections_until_first,
    pr_curve, precision_at_k, recall_at_k, roc_auc, roc_curve,
};
pub use kde::KdeDetector;
pub use kernel::Kernel;
pub use kfd::KfdDetector;
pub use knn::KnnDetector;
pub use mahalanobis::MahalanobisDetector;
pub use matrix::FeatureMatrix;
pub use ocsvm::{OcSvmConfig, OcSvmModel, OneClassSvm};
pub use pca::{PcaConfig, PcaDetector};
pub use scale::Scaler;
