//! Dense row-major feature storage.
//!
//! Every layer of the featurize→scale→detect→rank vertical moves samples
//! as a [`FeatureMatrix`]: one flat `Vec<f64>` of `rows × cols` values,
//! row-major, with cheap `&[f64]` row views. Compared to the ragged
//! `Vec<Vec<f64>>` it replaced, the flat layout makes Gram/kernel
//! evaluation cache-contiguous (row slices instead of pointer-chasing
//! nested vecs), eliminates per-row allocations on the rank path, and is
//! the prerequisite layout for batched/SIMD/sharded detectors.

use crate::detector::MlError;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` features: `rows` samples ×
/// `cols` dimensions stored in one contiguous allocation.
///
/// Rows are the unit of access: [`row`](FeatureMatrix::row) returns a
/// borrowed `&[f64]` slice, [`rows_iter`](FeatureMatrix::rows_iter)
/// walks them in order, and [`push_row`](FeatureMatrix::push_row) /
/// [`add_row`](FeatureMatrix::add_row) grow the matrix without any
/// intermediate per-row `Vec`.
///
/// ```
/// use mlcore::FeatureMatrix;
///
/// let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FeatureMatrix {
    /// An empty matrix ready to accept `cols`-wide rows.
    pub fn new(cols: usize) -> FeatureMatrix {
        FeatureMatrix {
            data: Vec::new(),
            rows: 0,
            cols,
        }
    }

    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> FeatureMatrix {
        FeatureMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// An empty matrix with room for `rows` rows pre-reserved.
    pub fn with_capacity(rows: usize, cols: usize) -> FeatureMatrix {
        FeatureMatrix {
            data: Vec::with_capacity(rows * cols),
            rows: 0,
            cols,
        }
    }

    /// Migration shim from the ragged representation: packs `rows` into
    /// one flat allocation.
    ///
    /// # Errors
    ///
    /// [`MlError::RaggedSamples`] if the rows disagree on length;
    /// [`MlError::TooFewSamples`] if `rows` is empty (an empty matrix has
    /// no inferable width — use [`FeatureMatrix::new`] instead).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<FeatureMatrix, MlError> {
        let first = rows
            .first()
            .ok_or(MlError::TooFewSamples { got: 0, need: 1 })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(MlError::RaggedSamples);
            }
            data.extend_from_slice(row);
        }
        Ok(FeatureMatrix {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// Builds from a pre-flattened row-major buffer.
    ///
    /// # Errors
    ///
    /// [`MlError::BadParameter`] if `data.len()` is not a multiple of
    /// `cols` (or `cols` is zero while data is not empty).
    pub fn from_flat(data: Vec<f64>, cols: usize) -> Result<FeatureMatrix, MlError> {
        if cols == 0 {
            if !data.is_empty() {
                return Err(MlError::BadParameter(
                    "zero-width matrix with nonzero data".into(),
                ));
            }
            return Ok(FeatureMatrix::new(0));
        }
        if !data.len().is_multiple_of(cols) {
            return Err(MlError::BadParameter(format!(
                "flat buffer of {} values is not a multiple of {} columns",
                data.len(),
                cols
            )));
        }
        let rows = data.len() / cols;
        Ok(FeatureMatrix { data, rows, cols })
    }

    /// Number of rows (samples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature dimensions).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry at (`i`, `j`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets entry (`i`, `j`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterates rows in order as `&[f64]` slices.
    pub fn rows_iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Appends a row by copying from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.cols,
            "pushed row of width {} onto a {}-column matrix",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends a zero row and hands back a mutable view of it, so
    /// producers (e.g. the trace counter table) can write features
    /// directly into the matrix with no intermediate allocation.
    pub fn add_row(&mut self) -> &mut [f64] {
        self.data.resize(self.data.len() + self.cols, 0.0);
        self.rows += 1;
        let start = (self.rows - 1) * self.cols;
        &mut self.data[start..]
    }

    /// Appends every row of `other` (one bulk copy). A matrix with no
    /// rows adopts `other`'s width, so pooling can start from
    /// `FeatureMatrix::new(0)`.
    ///
    /// # Panics
    ///
    /// Panics if both matrices have rows and their widths differ.
    pub fn append(&mut self, other: &FeatureMatrix) {
        if self.rows == 0 {
            self.cols = other.cols;
        }
        assert_eq!(
            other.cols, self.cols,
            "appended a {}-column matrix onto a {}-column matrix",
            other.cols, self.cols
        );
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// The flat row-major backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat backing buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Copies the matrix back out as ragged rows (test/debug aid; the
    /// inverse of [`FeatureMatrix::from_rows`]).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows_iter().map(|r| r.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = FeatureMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.to_rows(), rows);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(e, MlError::RaggedSamples);
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            FeatureMatrix::from_rows(&[]),
            Err(MlError::TooFewSamples { got: 0, need: 1 })
        ));
    }

    #[test]
    fn push_and_add_row_grow_in_place() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        m.add_row().copy_from_slice(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn append_pools_rows_and_adopts_width() {
        let mut pooled = FeatureMatrix::new(0);
        pooled.append(&FeatureMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap());
        pooled.append(&FeatureMatrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap());
        assert_eq!(pooled.rows(), 3);
        assert_eq!(pooled.cols(), 2);
        assert_eq!(pooled.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "appended a 3-column matrix")]
    fn append_rejects_width_mismatch() {
        let mut m = FeatureMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        m.append(&FeatureMatrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap());
    }

    #[test]
    fn get_set_are_row_major() {
        let mut m = FeatureMatrix::zeros(2, 3);
        m.set(1, 2, 9.0);
        assert_eq!(m.get(1, 2), 9.0);
        assert_eq!(m.as_slice()[5], 9.0);
    }

    #[test]
    fn from_flat_checks_divisibility() {
        assert!(FeatureMatrix::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        let m = FeatureMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(m.rows(), 2);
    }

    #[test]
    fn rows_iter_is_exact() {
        let m = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let it = m.rows_iter();
        assert_eq!(it.len(), 3);
        let collected: Vec<f64> = it.map(|r| r[0]).collect();
        assert_eq!(collected, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_width_matrix_iterates_empty_rows() {
        let m = FeatureMatrix::new(0);
        assert_eq!(m.rows(), 0);
        assert!(m.rows_iter().next().is_none());
    }
}
