//! PCA reconstruction-error outlier detector — one of the alternative
//! plug-ins the paper names (Section VI-E).
//!
//! Fits principal components on the sample set, keeps the smallest number
//! of leading components explaining a target variance fraction, and scores
//! each sample by the negated Euclidean reconstruction error: samples far
//! from the principal subspace are suspicious.

use crate::detector::{validate_samples, MlError, OutlierDetector};
use crate::linalg::{self, LinalgError};
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// PCA detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcaConfig {
    /// Fraction of total variance the kept components must explain,
    /// in `(0, 1]`.
    pub variance_fraction: f64,
    /// Hard cap on the number of components (`None` = no cap).
    pub max_components: Option<usize>,
}

impl Default for PcaConfig {
    fn default() -> Self {
        PcaConfig {
            variance_fraction: 0.95,
            max_components: None,
        }
    }
}

/// The PCA reconstruction-error detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PcaDetector {
    /// Configuration.
    pub config: PcaConfig,
}

impl PcaDetector {
    /// Creates a detector keeping components for the given variance
    /// fraction.
    pub fn with_variance(variance_fraction: f64) -> PcaDetector {
        PcaDetector {
            config: PcaConfig {
                variance_fraction,
                ..PcaConfig::default()
            },
        }
    }
}

impl From<LinalgError> for MlError {
    fn from(e: LinalgError) -> Self {
        MlError::Numeric(e.to_string())
    }
}

impl OutlierDetector for PcaDetector {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        validate_samples(samples, 2)?;
        let frac = self.config.variance_fraction;
        if !(0.0..=1.0).contains(&frac) || frac <= 0.0 {
            return Err(MlError::BadParameter(format!(
                "variance fraction {frac} outside (0, 1]"
            )));
        }
        let mean = linalg::mean(samples);
        let cov = linalg::covariance(samples, &mean);
        let (vals, vecs) = linalg::jacobi_eigen(&cov)?;
        let total: f64 = vals.iter().filter(|&&v| v > 0.0).sum();
        if total <= 0.0 {
            // Degenerate data (all points identical): zero error everywhere.
            return Ok(vec![0.0; samples.rows()]);
        }
        let mut kept = 0usize;
        let mut acc = 0.0;
        for &v in &vals {
            if v <= 0.0 {
                break;
            }
            kept += 1;
            acc += v;
            if acc / total >= frac {
                break;
            }
        }
        if let Some(cap) = self.config.max_components {
            kept = kept.min(cap.max(1));
        }
        // Always leave at least one residual direction, otherwise every
        // sample reconstructs exactly and the detector is blind.
        if total > 0.0 && vals.len() > 1 {
            kept = kept.min(vals.len() - 1);
        }
        let scores = samples
            .rows_iter()
            .map(|s| {
                let centered: Vec<f64> = s.iter().zip(&mean).map(|(a, m)| a - m).collect();
                // Residual² = ||centered||² − Σ projections².
                let norm_sq: f64 = centered.iter().map(|v| v * v).sum();
                let proj_sq: f64 = (0..kept)
                    .map(|b| {
                        let p = linalg::dot(vecs.row(b), &centered);
                        p * p
                    })
                    .sum();
                -(norm_sq - proj_sq).max(0.0).sqrt()
            })
            .collect();
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::rank_ascending;

    #[test]
    fn off_subspace_point_ranks_first() {
        // Data on the line y = x, one point far off it.
        let mut pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, i as f64 + (i % 3) as f64 * 0.01])
            .collect();
        pts.push(vec![20.0, -20.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = PcaDetector::with_variance(0.8).score(&pts).unwrap();
        assert_eq!(rank_ascending(&scores)[0], 40);
    }

    #[test]
    fn on_subspace_points_score_near_zero() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let pts = FeatureMatrix::from_rows(&rows).unwrap();
        let scores = PcaDetector::with_variance(0.99).score(&pts).unwrap();
        for s in scores {
            assert!(s.abs() < 1e-5, "residual should vanish on the line: {s}");
        }
    }

    #[test]
    fn identical_points_degenerate_ok() {
        let pts = FeatureMatrix::from_rows(&vec![vec![1.0, 1.0]; 5]).unwrap();
        let scores = PcaDetector::default().score(&pts).unwrap();
        assert_eq!(scores, vec![0.0; 5]);
    }

    #[test]
    fn component_cap_respected() {
        let detector = PcaDetector {
            config: PcaConfig {
                variance_fraction: 1.0,
                max_components: Some(1),
            },
        };
        // Full-rank 2-D data with a cap of 1 component: residuals nonzero.
        let pts = FeatureMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.5],
            vec![2.0, -0.5],
            vec![3.0, 0.2],
        ])
        .unwrap();
        let scores = detector.score(&pts).unwrap();
        assert!(scores.iter().any(|&s| s < -1e-6));
    }

    #[test]
    fn bad_fraction_rejected() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(PcaDetector::with_variance(0.0).score(&pts).is_err());
        assert!(PcaDetector::with_variance(1.5).score(&pts).is_err());
    }
}
