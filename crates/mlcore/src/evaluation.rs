//! Ranking-quality metrics for outlier detection, used by the ablation
//! and inspection-effort studies: precision/recall at k, average
//! precision, ROC-AUC, and the expected manual-inspection cost that the
//! paper's evaluation argues Sentomist reduces.

/// Precision among the first `k` ranked items: fraction that are relevant.
///
/// `ranked` is the ranking (most suspicious first) as item identifiers;
/// `relevant(i)` says whether an item is a true symptom. Returns 0 for
/// `k == 0`.
pub fn precision_at_k<T>(ranked: &[T], k: usize, mut relevant: impl FnMut(&T) -> bool) -> f64 {
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked[..k].iter().filter(|x| relevant(x)).count();
    hits as f64 / k as f64
}

/// Recall among the first `k` ranked items: fraction of all relevant items
/// found. Returns 1 when there are no relevant items (nothing to find).
pub fn recall_at_k<T>(ranked: &[T], k: usize, mut relevant: impl FnMut(&T) -> bool) -> f64 {
    let total = ranked.iter().filter(|x| relevant(x)).count();
    if total == 0 {
        return 1.0;
    }
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|x| relevant(x)).count();
    hits as f64 / total as f64
}

/// Average precision (area under the precision-recall curve, interpolated
/// at each relevant item). Returns 1 when there are no relevant items.
pub fn average_precision<T>(ranked: &[T], relevant: impl FnMut(&T) -> bool) -> f64 {
    let flags: Vec<bool> = ranked.iter().map(relevant).collect();
    let total = flags.iter().filter(|&&f| f).count();
    if total == 0 {
        return 1.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &f) in flags.iter().enumerate() {
        if f {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total as f64
}

/// ROC-AUC of the ranking: the probability that a uniformly random
/// relevant item is ranked above a uniformly random irrelevant one
/// (ties in rank cannot occur since a ranking is a permutation).
/// Returns 0.5 when either class is empty.
pub fn roc_auc<T>(ranked: &[T], relevant: impl FnMut(&T) -> bool) -> f64 {
    let flags: Vec<bool> = ranked.iter().map(relevant).collect();
    let positives = flags.iter().filter(|&&f| f).count();
    let negatives = flags.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // For each positive at position i (0-based), the number of negatives
    // ranked below it (positions > i) counts as a win.
    let mut wins = 0usize;
    let mut negatives_seen = 0usize;
    for &f in &flags {
        if f {
            wins += negatives - negatives_seen;
        } else {
            negatives_seen += 1;
        }
    }
    wins as f64 / (positives * negatives) as f64
}

/// Number of items a human must inspect, following the ranking top-down,
/// until the first true symptom is seen. `None` if there is none.
pub fn inspections_until_first<T>(ranked: &[T], relevant: impl FnMut(&T) -> bool) -> Option<usize> {
    ranked.iter().position(relevant).map(|p| p + 1)
}

/// Number of items a human must inspect, following the ranking top-down,
/// until *every* true symptom has been seen. `None` if there are none.
pub fn inspections_until_all<T>(
    ranked: &[T],
    mut relevant: impl FnMut(&T) -> bool,
) -> Option<usize> {
    let mut last = None;
    for (i, x) in ranked.iter().enumerate() {
        if relevant(x) {
            last = Some(i + 1);
        }
    }
    last
}

/// Points of the ROC curve (false-positive rate, true-positive rate),
/// one per ranking prefix, starting at (0, 0) and ending at (1, 1).
/// Returns just the endpoints when either class is empty.
pub fn roc_curve<T>(ranked: &[T], relevant: impl FnMut(&T) -> bool) -> Vec<(f64, f64)> {
    let flags: Vec<bool> = ranked.iter().map(relevant).collect();
    let positives = flags.iter().filter(|&&f| f).count();
    let negatives = flags.len() - positives;
    if positives == 0 || negatives == 0 {
        return vec![(0.0, 0.0), (1.0, 1.0)];
    }
    let mut curve = Vec::with_capacity(flags.len() + 1);
    curve.push((0.0, 0.0));
    let (mut tp, mut fp) = (0usize, 0usize);
    for f in flags {
        if f {
            tp += 1;
        } else {
            fp += 1;
        }
        curve.push((fp as f64 / negatives as f64, tp as f64 / positives as f64));
    }
    curve
}

/// Points of the precision-recall curve `(recall, precision)`, one per
/// ranking prefix. Empty when there are no relevant items.
pub fn pr_curve<T>(ranked: &[T], relevant: impl FnMut(&T) -> bool) -> Vec<(f64, f64)> {
    let flags: Vec<bool> = ranked.iter().map(relevant).collect();
    let positives = flags.iter().filter(|&&f| f).count();
    if positives == 0 {
        return Vec::new();
    }
    let mut curve = Vec::with_capacity(flags.len());
    let mut tp = 0usize;
    for (i, f) in flags.into_iter().enumerate() {
        if f {
            tp += 1;
        }
        curve.push((tp as f64 / positives as f64, tp as f64 / (i + 1) as f64));
    }
    curve
}

/// Expected inspections until the first of `positives` symptoms under a
/// *uniformly random* inspection order of `total` items — the brute-force
/// baseline the paper contrasts against: `(total + 1) / (positives + 1)`.
pub fn expected_random_inspections(total: usize, positives: usize) -> f64 {
    if positives == 0 {
        return total as f64;
    }
    (total as f64 + 1.0) / (positives as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Ranking of ids; relevant ids in a set.
    fn rel(set: &[usize]) -> impl FnMut(&usize) -> bool + '_ {
        move |x| set.contains(x)
    }

    #[test]
    fn precision_and_recall_basics() {
        let ranked = vec![1, 2, 3, 4, 5];
        assert_eq!(precision_at_k(&ranked, 2, rel(&[1, 5])), 0.5);
        assert_eq!(precision_at_k(&ranked, 0, rel(&[1])), 0.0);
        assert_eq!(recall_at_k(&ranked, 2, rel(&[1, 5])), 0.5);
        assert_eq!(recall_at_k(&ranked, 5, rel(&[1, 5])), 1.0);
        assert_eq!(recall_at_k(&ranked, 3, rel(&[])), 1.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        let ranked = vec![1, 2, 3, 4];
        assert_eq!(average_precision(&ranked, rel(&[1, 2])), 1.0);
        // Both relevant items at the bottom: (1/3 + 2/4) / 2.
        let ap = average_precision(&ranked, rel(&[3, 4]));
        assert!((ap - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn auc_extremes_and_middle() {
        let ranked = vec![1, 2, 3, 4];
        assert_eq!(roc_auc(&ranked, rel(&[1, 2])), 1.0);
        assert_eq!(roc_auc(&ranked, rel(&[3, 4])), 0.0);
        assert_eq!(roc_auc(&ranked, rel(&[1, 4])), 0.5);
        assert_eq!(roc_auc(&ranked, rel(&[])), 0.5);
    }

    #[test]
    fn inspection_counts() {
        let ranked = vec![10, 20, 30, 40];
        assert_eq!(inspections_until_first(&ranked, rel(&[30])), Some(3));
        assert_eq!(inspections_until_all(&ranked, rel(&[10, 30])), Some(3));
        assert_eq!(inspections_until_first(&ranked, rel(&[])), None);
    }

    #[test]
    fn random_baseline_formula() {
        // 99 items, 1 positive: expect (99+1)/2 = 50 inspections.
        assert_eq!(expected_random_inspections(99, 1), 50.0);
        assert_eq!(expected_random_inspections(10, 0), 10.0);
    }

    #[test]
    fn roc_curve_shape_and_auc_consistency() {
        let ranked = vec![1, 2, 3, 4, 5, 6];
        let curve = roc_curve(&ranked, rel(&[1, 3]));
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        // Monotone in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        // Trapezoid integration of the curve equals roc_auc.
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0;
        }
        assert!((area - roc_auc(&ranked, rel(&[1, 3]))).abs() < 1e-12);
        // Degenerate class.
        assert_eq!(roc_curve(&ranked, rel(&[])), vec![(0.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn pr_curve_shape() {
        let ranked = vec![1, 2, 3, 4];
        let curve = pr_curve(&ranked, rel(&[1, 4]));
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0], (0.5, 1.0));
        assert_eq!(curve[3], (1.0, 0.5));
        assert!(pr_curve(&ranked, rel(&[])).is_empty());
    }

    #[test]
    fn auc_matches_pairwise_definition_on_example() {
        let ranked = vec![1, 2, 3, 4, 5, 6];
        let relevant_set = [2usize, 3, 6];
        let auc = roc_auc(&ranked, rel(&relevant_set));
        // Brute force.
        let mut wins = 0;
        let mut pairs = 0;
        for (i, a) in ranked.iter().enumerate() {
            if !relevant_set.contains(a) {
                continue;
            }
            for (j, b) in ranked.iter().enumerate() {
                if relevant_set.contains(b) {
                    continue;
                }
                pairs += 1;
                if i < j {
                    wins += 1;
                }
            }
        }
        assert!((auc - wins as f64 / pairs as f64).abs() < 1e-12);
    }
}
