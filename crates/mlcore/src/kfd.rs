//! One-class Kernel Fisher Discriminant detector — the second alternative
//! the paper's §VI-E names explicitly ("Principal Component Analysis and
//! one-class Kernel Fisher Discriminants").
//!
//! Following the one-class KFD construction (Roth, *Kernel Fisher
//! discriminants for outlier detection*, Neural Computation 2006, in its
//! Gaussian-model reading): model the data in the kernel-induced feature
//! space with a Gaussian, i.e. score each sample by its Mahalanobis
//! distance to the feature-space mean under the empirical covariance
//! operator. Everything is computable from the centered Gram matrix: with
//! eigenpairs `(λ_k, u_k)` of the centered Gram `K̃` (so feature-space
//! principal directions have variance `λ_k / n`), the squared whitened
//! distance of training sample `i` decomposes along components as
//!
//! ```text
//! d²(x_i) = Σ_k  (u_{k,i}² · λ_k / (λ_k/n + r))   (projection² / variance)
//! ```
//!
//! with a ridge `r` (a fraction of the average eigenvalue mass) playing
//! the regularization role of the within-class scatter floor. Scores are
//! the negated distances, so outliers rank first.
//!
//! Only the leading eigenpairs carry signal; they are obtained with the
//! deflated power iteration in [`crate::linalg::top_eigen_psd`], keeping
//! the detector usable at the thousand-sample scale of case study I.

use crate::detector::{validate_samples, MlError, OutlierDetector};
use crate::kernel::Kernel;
use crate::linalg;
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// One-class KFD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KfdConfig {
    /// Kernel; `None` selects RBF with `gamma = 1/num_features`.
    pub kernel: Option<Kernel>,
    /// Number of leading feature-space components to whiten.
    pub components: usize,
    /// Ridge regularization as a fraction of the mean component variance.
    pub ridge: f64,
    /// Power-iteration steps per component.
    pub iterations: usize,
}

impl Default for KfdConfig {
    fn default() -> Self {
        KfdConfig {
            kernel: None,
            components: 16,
            ridge: 0.1,
            iterations: 200,
        }
    }
}

/// The one-class Kernel Fisher Discriminant detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KfdDetector {
    /// Configuration.
    pub config: KfdConfig,
}

impl KfdDetector {
    /// Creates a detector with the given number of whitened components.
    pub fn with_components(components: usize) -> KfdDetector {
        KfdDetector {
            config: KfdConfig {
                components,
                ..KfdConfig::default()
            },
        }
    }
}

impl OutlierDetector for KfdDetector {
    fn name(&self) -> &'static str {
        "kfd"
    }

    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let d = validate_samples(samples, 2)?;
        if self.config.components == 0 {
            return Err(MlError::BadParameter("components must be positive".into()));
        }
        if self.config.ridge <= 0.0 {
            return Err(MlError::BadParameter("ridge must be positive".into()));
        }
        let kernel = self.config.kernel.unwrap_or(Kernel::rbf_default(d));
        let n = samples.rows();
        let gram = kernel.gram(samples);

        // Center the Gram matrix: K̃ = K - 1K - K1 + 1K1.
        let row_mean: Vec<f64> = gram
            .rows_iter()
            .map(|row| row.iter().sum::<f64>() / n as f64)
            .collect();
        let total_mean: f64 = row_mean.iter().sum::<f64>() / n as f64;
        let mut centered = FeatureMatrix::zeros(n, n);
        for i in 0..n {
            let gi = gram.row(i);
            let ci = centered.row_mut(i);
            for j in 0..n {
                ci[j] = gi[j] - row_mean[i] - row_mean[j] + total_mean;
            }
        }

        let k = self.config.components.min(n);
        let (vals, vecs) = linalg::top_eigen_psd(&centered, k, self.config.iterations)
            .map_err(|e| MlError::Numeric(e.to_string()))?;
        if vals.is_empty() {
            // Degenerate data: all samples identical in feature space.
            return Ok(vec![0.0; n]);
        }
        // Mean feature-space variance over the captured components, as the
        // ridge scale.
        let mean_var = vals.iter().map(|l| l / n as f64).sum::<f64>() / vals.len() as f64;
        let ridge = self.config.ridge * mean_var.max(1e-300);

        let scores = (0..n)
            .map(|i| {
                let mut dist_sq = 0.0;
                for (lambda, u) in vals.iter().zip(vecs.rows_iter()) {
                    let variance = lambda / n as f64;
                    // Projection of centered φ(x_i) on component k equals
                    // u_{k,i} · sqrt(λ_k); whitened with (variance + ridge).
                    let proj_sq = u[i] * u[i] * lambda;
                    dist_sq += proj_sq / (variance + ridge);
                }
                -dist_sq.sqrt()
            })
            .collect();
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::rank_ascending;

    fn cluster_with_outlier() -> FeatureMatrix {
        let mut pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i % 3) as f64 * 0.1])
            .collect();
        pts.push(vec![4.0, -4.0]);
        FeatureMatrix::from_rows(&pts).unwrap()
    }

    #[test]
    fn outlier_ranks_first() {
        let pts = cluster_with_outlier();
        let scores = KfdDetector::default().score(&pts).unwrap();
        assert_eq!(rank_ascending(&scores)[0], 30);
    }

    #[test]
    fn identical_points_degenerate_ok() {
        let pts = FeatureMatrix::from_rows(&vec![vec![2.0, 2.0]; 8]).unwrap();
        let scores = KfdDetector::default().score(&pts).unwrap();
        assert_eq!(scores, vec![0.0; 8]);
    }

    #[test]
    fn two_modes_are_both_normal() {
        // Two dense clusters plus one isolated point: the isolated point
        // must rank below both modes.
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i % 4) as f64 * 0.02, 0.0]);
        }
        for i in 0..12 {
            pts.push(vec![1.0 + (i % 4) as f64 * 0.02, 1.0]);
        }
        pts.push(vec![5.0, -5.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = KfdDetector::default().score(&pts).unwrap();
        let order = rank_ascending(&scores);
        assert_eq!(order[0], 32);
    }

    #[test]
    fn bad_parameters_rejected() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(KfdDetector::with_components(0).score(&pts).is_err());
        let bad_ridge = KfdDetector {
            config: KfdConfig {
                ridge: 0.0,
                ..KfdConfig::default()
            },
        };
        assert!(bad_ridge.score(&pts).is_err());
    }

    #[test]
    fn deterministic() {
        let pts = cluster_with_outlier();
        let a = KfdDetector::default().score(&pts).unwrap();
        let b = KfdDetector::default().score(&pts).unwrap();
        assert_eq!(a, b);
    }
}
