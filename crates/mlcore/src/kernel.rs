//! Kernel functions for the one-class SVM.
//!
//! The paper relies on the kernel trick to let the one-class SVM find a
//! *nonlinear* boundary around the normal samples; the RBF kernel is the
//! default (as in LIBSVM, which Sentomist plugs in).

use crate::linalg::{dist_sq, dot};
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// A kernel function `k(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `k(x, y) = x · y`.
    Linear,
    /// `k(x, y) = exp(-gamma * ||x - y||²)`.
    Rbf {
        /// Width parameter; LIBSVM's default is `1 / num_features`.
        gamma: f64,
    },
    /// `k(x, y) = (gamma * x·y + coef0)^degree`.
    Poly {
        /// Scale of the inner product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
}

impl Kernel {
    /// The LIBSVM-style default: RBF with `gamma = 1 / num_features`.
    pub fn rbf_default(num_features: usize) -> Kernel {
        Kernel::Rbf {
            gamma: 1.0 / (num_features.max(1) as f64),
        }
    }

    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ.
    pub fn eval(self, x: &[f64], y: &[f64]) -> f64 {
        match self {
            Kernel::Linear => dot(x, y),
            Kernel::Rbf { gamma } => (-gamma * dist_sq(x, y)).exp(),
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(x, y) + coef0).powi(degree as i32),
        }
    }

    /// Full Gram matrix of a sample set (dense row-major, symmetric).
    ///
    /// Rows are contiguous slices of the input matrix, so each kernel
    /// evaluation streams two cache-resident rows rather than chasing
    /// nested-`Vec` pointers.
    pub fn gram(self, samples: &FeatureMatrix) -> FeatureMatrix {
        let l = samples.rows();
        let mut q = FeatureMatrix::zeros(l, l);
        for i in 0..l {
            let xi = samples.row(i);
            for j in i..l {
                let v = self.eval(xi, samples.row(j));
                q.set(i, j, v);
                q.set(j, i, v);
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_identity_and_decay() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn poly_matches_formula() {
        let k = Kernel::Poly {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        // (1*2 + 1)^2 = 9 for x·y = 2.
        assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 9.0);
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal_for_rbf() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]).unwrap();
        let q = Kernel::rbf_default(1).gram(&pts);
        for i in 0..3 {
            assert_eq!(q.get(i, i), 1.0);
            for j in 0..3 {
                assert_eq!(q.get(i, j), q.get(j, i));
            }
        }
    }

    #[test]
    fn rbf_default_gamma() {
        match Kernel::rbf_default(4) {
            Kernel::Rbf { gamma } => assert_eq!(gamma, 0.25),
            _ => unreachable!(),
        }
    }
}
