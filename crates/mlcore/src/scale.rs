//! Min-max feature scaling (the `svm-scale` step of a LIBSVM workflow).
//!
//! Instruction counters mix dimensions with very different magnitudes
//! (a loop body executes thousands of times; a branch target twice).
//! Scaling every dimension to `[0, 1]` keeps the RBF kernel from being
//! dominated by high-count instructions. Constant dimensions map to 0.

use serde::{Deserialize, Serialize};

/// Per-dimension min-max scaler fitted on a sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl Scaler {
    /// Fits the scaler on `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or ragged.
    pub fn fit(samples: &[Vec<f64>]) -> Scaler {
        assert!(!samples.is_empty(), "cannot fit a scaler on no samples");
        let d = samples[0].len();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for s in samples {
            assert_eq!(s.len(), d, "ragged samples");
            for i in 0..d {
                mins[i] = mins[i].min(s[i]);
                maxs[i] = maxs[i].max(s[i]);
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(&lo, &hi)| hi - lo).collect();
        Scaler { mins, ranges }
    }

    /// Scales one sample into `[0, 1]` per dimension (constant dimensions
    /// become 0).
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the fitted one.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.mins.len());
        sample
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if self.ranges[i] > 0.0 {
                    (v - self.mins[i]) / self.ranges[i]
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Fits on `samples` and transforms them all.
    pub fn fit_transform(samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let scaler = Scaler::fit(samples);
        samples.iter().map(|s| scaler.transform(s)).collect()
    }

    /// Indices of dimensions that vary across the fitted samples.
    pub fn active_dimensions(&self) -> Vec<usize> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_unit_interval() {
        let samples = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 15.0]];
        let scaled = Scaler::fit_transform(&samples);
        for s in &scaled {
            for &v in s {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(scaled[0], vec![0.0, 0.0]);
        assert_eq!(scaled[1], vec![0.5, 1.0]);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let samples = vec![vec![7.0, 1.0], vec![7.0, 2.0]];
        let scaled = Scaler::fit_transform(&samples);
        assert_eq!(scaled[0][0], 0.0);
        assert_eq!(scaled[1][0], 0.0);
    }

    #[test]
    fn transform_extrapolates_outside_fit_range() {
        let scaler = Scaler::fit(&[vec![0.0], vec![10.0]]);
        assert_eq!(scaler.transform(&[20.0]), vec![2.0]);
        assert_eq!(scaler.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn active_dimensions_excludes_constants() {
        let scaler = Scaler::fit(&[vec![1.0, 2.0, 3.0], vec![1.0, 5.0, 3.0]]);
        assert_eq!(scaler.active_dimensions(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_panics() {
        Scaler::fit(&[]);
    }
}
