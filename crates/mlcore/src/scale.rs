//! Min-max feature scaling (the `svm-scale` step of a LIBSVM workflow).
//!
//! Instruction counters mix dimensions with very different magnitudes
//! (a loop body executes thousands of times; a branch target twice).
//! Scaling every dimension to `[0, 1]` keeps the RBF kernel from being
//! dominated by high-count instructions. Constant dimensions map to 0.

use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// Per-dimension min-max scaler fitted on a sample matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl Scaler {
    /// Fits the scaler on the rows of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` has no rows.
    pub fn fit(samples: &FeatureMatrix) -> Scaler {
        assert!(!samples.is_empty(), "cannot fit a scaler on no samples");
        let d = samples.cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for s in samples.rows_iter() {
            for i in 0..d {
                mins[i] = mins[i].min(s[i]);
                maxs[i] = maxs[i].max(s[i]);
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(&lo, &hi)| hi - lo).collect();
        Scaler { mins, ranges }
    }

    /// Scales one sample into `[0, 1]` per dimension (constant dimensions
    /// become 0).
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the fitted one.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.mins.len());
        sample
            .iter()
            .enumerate()
            .map(|(i, &v)| self.scale_one(i, v))
            .collect()
    }

    /// Scales every row of `samples` in place — the rank path's scaled
    /// branch, with no per-row allocation.
    ///
    /// # Panics
    ///
    /// Panics if the matrix width differs from the fitted dimension.
    pub fn transform_in_place(&self, samples: &mut FeatureMatrix) {
        assert_eq!(samples.cols(), self.mins.len());
        for r in 0..samples.rows() {
            let row = samples.row_mut(r);
            for (i, v) in row.iter_mut().enumerate() {
                *v = self.scale_one(i, *v);
            }
        }
    }

    /// Fits on `samples` and returns the scaled matrix.
    pub fn fit_transform(samples: &FeatureMatrix) -> FeatureMatrix {
        let scaler = Scaler::fit(samples);
        let mut out = samples.clone();
        scaler.transform_in_place(&mut out);
        out
    }

    /// Indices of dimensions that vary across the fitted samples.
    pub fn active_dimensions(&self) -> Vec<usize> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    #[inline]
    fn scale_one(&self, i: usize, v: f64) -> f64 {
        if self.ranges[i] > 0.0 {
            (v - self.mins[i]) / self.ranges[i]
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> FeatureMatrix {
        FeatureMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn scales_to_unit_interval() {
        let samples = m(&[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 15.0]]);
        let scaled = Scaler::fit_transform(&samples);
        for s in scaled.rows_iter() {
            for &v in s {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(scaled.row(0), &[0.0, 0.0]);
        assert_eq!(scaled.row(1), &[0.5, 1.0]);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let samples = m(&[vec![7.0, 1.0], vec![7.0, 2.0]]);
        let scaled = Scaler::fit_transform(&samples);
        assert_eq!(scaled.get(0, 0), 0.0);
        assert_eq!(scaled.get(1, 0), 0.0);
    }

    #[test]
    fn transform_extrapolates_outside_fit_range() {
        let scaler = Scaler::fit(&m(&[vec![0.0], vec![10.0]]));
        assert_eq!(scaler.transform(&[20.0]), vec![2.0]);
        assert_eq!(scaler.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn in_place_matches_per_row_transform() {
        let samples = m(&[vec![1.0, -3.0], vec![4.0, 9.0], vec![2.5, 0.0]]);
        let scaler = Scaler::fit(&samples);
        let mut in_place = samples.clone();
        scaler.transform_in_place(&mut in_place);
        for (i, row) in samples.rows_iter().enumerate() {
            assert_eq!(in_place.row(i), scaler.transform(row).as_slice());
        }
    }

    #[test]
    fn active_dimensions_excludes_constants() {
        let scaler = Scaler::fit(&m(&[vec![1.0, 2.0, 3.0], vec![1.0, 5.0, 3.0]]));
        assert_eq!(scaler.active_dimensions(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_panics() {
        Scaler::fit(&FeatureMatrix::new(3));
    }
}
