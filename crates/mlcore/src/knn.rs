//! k-nearest-neighbor distance outlier detector.
//!
//! Scores each sample by the negated mean Euclidean distance to its `k`
//! nearest neighbors within the sample set — a classic density-based
//! baseline for the detector-ablation study.

use crate::detector::{validate_samples, MlError, OutlierDetector};
use crate::linalg::dist_sq;
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// kNN detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbors (clamped to `samples - 1` at scoring time).
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// The kNN-distance detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnDetector {
    /// Configuration.
    pub config: KnnConfig,
}

impl KnnDetector {
    /// Creates a detector with the given neighbor count.
    pub fn with_k(k: usize) -> KnnDetector {
        KnnDetector {
            config: KnnConfig { k },
        }
    }
}

impl OutlierDetector for KnnDetector {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        validate_samples(samples, 2)?;
        if self.config.k == 0 {
            return Err(MlError::BadParameter("k must be positive".into()));
        }
        let k = self.config.k.min(samples.rows() - 1);
        let scores = samples
            .rows_iter()
            .enumerate()
            .map(|(i, s)| {
                let mut dists: Vec<f64> = samples
                    .rows_iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, o)| dist_sq(s, o))
                    .collect();
                dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mean: f64 = dists.iter().take(k).map(|d| d.sqrt()).sum::<f64>() / k as f64;
                -mean
            })
            .collect();
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::rank_ascending;

    #[test]
    fn isolated_point_ranks_first() {
        let mut pts: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i % 3) as f64 * 0.1, (i % 4) as f64 * 0.1])
            .collect();
        pts.push(vec![9.0, 9.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = KnnDetector::default().score(&pts).unwrap();
        assert_eq!(rank_ascending(&scores)[0], 10);
    }

    #[test]
    fn k_clamped_to_sample_count() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let scores = KnnDetector::with_k(100).score(&pts).unwrap();
        assert_eq!(scores.len(), 3);
        // Middle point is closest to both others.
        assert!(scores[1] > scores[0]);
        assert!(scores[1] > scores[2]);
    }

    #[test]
    fn zero_k_rejected() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(matches!(
            KnnDetector::with_k(0).score(&pts),
            Err(MlError::BadParameter(_))
        ));
    }

    #[test]
    fn duplicate_points_score_zero() {
        let pts = FeatureMatrix::from_rows(&vec![vec![3.0, 3.0]; 6]).unwrap();
        let scores = KnnDetector::with_k(2).score(&pts).unwrap();
        assert_eq!(scores, vec![0.0; 6]);
    }
}
