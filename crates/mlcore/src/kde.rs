//! Parzen-window (kernel density) outlier detector.
//!
//! Scores each sample by the log of its leave-one-out kernel density
//! estimate under an RBF window: samples in sparse regions of feature
//! space get low density, hence low scores. A classic density-based
//! alternative for the plug-in ablation; like kNN it is vulnerable to
//! clustered anomalies but needs no neighbor-count parameter.

use crate::detector::{validate_samples, MlError, OutlierDetector};
use crate::kernel::Kernel;
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// Kernel-density detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct KdeConfig {
    /// Window kernel; `None` selects RBF with `gamma = 1/num_features`.
    pub kernel: Option<Kernel>,
}

/// The Parzen-window detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KdeDetector {
    /// Configuration.
    pub config: KdeConfig,
}

impl KdeDetector {
    /// Creates a detector with an explicit window kernel.
    pub fn with_kernel(kernel: Kernel) -> KdeDetector {
        KdeDetector {
            config: KdeConfig {
                kernel: Some(kernel),
            },
        }
    }
}

impl OutlierDetector for KdeDetector {
    fn name(&self) -> &'static str {
        "kde"
    }

    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let d = validate_samples(samples, 2)?;
        let kernel = self.config.kernel.unwrap_or(Kernel::rbf_default(d));
        let l = samples.rows();
        let gram = kernel.gram(samples);
        let scores = (0..l)
            .map(|i| {
                // Leave-one-out density: exclude the self-kernel term.
                let gi = gram.row(i);
                let sum: f64 = (0..l).filter(|&j| j != i).map(|j| gi[j]).sum();
                let density = (sum / (l - 1) as f64).max(f64::MIN_POSITIVE);
                density.ln()
            })
            .collect();
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::rank_ascending;

    #[test]
    fn isolated_point_scores_lowest() {
        let mut pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 4) as f64 * 0.05, (i % 5) as f64 * 0.05])
            .collect();
        pts.push(vec![30.0, -30.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = KdeDetector::default().score(&pts).unwrap();
        assert_eq!(rank_ascending(&scores)[0], 20);
    }

    #[test]
    fn uniform_cluster_scores_equal() {
        let pts = FeatureMatrix::from_rows(&vec![vec![1.0, 2.0]; 10]).unwrap();
        let scores = KdeDetector::default().score(&pts).unwrap();
        for w in scores.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn denser_region_scores_higher() {
        // 10 points at the origin, 2 at a moderate offset: the dense
        // region has higher density.
        let mut pts = vec![vec![0.0]; 10];
        pts.push(vec![2.0]);
        pts.push(vec![2.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = KdeDetector::default().score(&pts).unwrap();
        assert!(scores[0] > scores[10]);
    }

    #[test]
    fn custom_kernel_respected() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![5.0]]).unwrap();
        let tight = KdeDetector::with_kernel(Kernel::Rbf { gamma: 10.0 })
            .score(&pts)
            .unwrap();
        let wide = KdeDetector::with_kernel(Kernel::Rbf { gamma: 0.01 })
            .score(&pts)
            .unwrap();
        // A tight window separates the far point much more sharply.
        let tight_gap = tight[0] - tight[2];
        let wide_gap = wide[0] - wide[2];
        assert!(tight_gap > wide_gap);
    }

    #[test]
    fn too_few_samples_rejected() {
        let one = FeatureMatrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(KdeDetector::default().score(&one).is_err());
    }
}
