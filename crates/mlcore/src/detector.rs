//! The plug-in outlier-detector interface (paper Section VI-E: "Sentomist
//! can actually plug in these outlier detection algorithms conveniently").

use crate::matrix::FeatureMatrix;
use std::error::Error;
use std::fmt;

/// Failure of an outlier detector.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// No samples (or fewer than the detector requires).
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Samples of inconsistent dimensionality.
    RaggedSamples,
    /// An invalid hyperparameter.
    BadParameter(String),
    /// A numeric routine failed.
    Numeric(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::TooFewSamples { got, need } => {
                write!(f, "need at least {need} samples, got {got}")
            }
            MlError::RaggedSamples => f.write_str("samples have inconsistent dimensions"),
            MlError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            MlError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl Error for MlError {}

/// An unsupervised outlier detector over a fixed sample set.
///
/// Samples arrive as a dense row-major [`FeatureMatrix`] — one row per
/// sample. Implementations fit on the given samples and return one score
/// per row, **lower = more suspicious**. For the one-class SVM the score
/// is the signed distance to the decision boundary (negative on the
/// outlier side — exactly the ranking quantity of the paper's Figure 5);
/// other detectors return negated distances or reconstruction errors so
/// that the ordering convention matches.
///
/// ```
/// use mlcore::{FeatureMatrix, OneClassSvm, OutlierDetector};
///
/// let samples = FeatureMatrix::from_rows(&[
///     vec![1.0, 0.0],
///     vec![1.1, 0.0],
///     vec![0.9, 0.1],
///     vec![9.0, 9.0], // the outlier
/// ]).unwrap();
/// let scores = OneClassSvm::with_nu(0.5).score(&samples).unwrap();
/// assert_eq!(scores.len(), samples.rows());
/// ```
///
/// Detectors are `Send + Sync` so pipelines built around them can be
/// driven from campaign worker threads (see `sentomist-core`'s campaign
/// orchestrator); all detectors here are plain value types, so the bound
/// costs implementations nothing.
pub trait OutlierDetector: Send + Sync {
    /// A short, stable identifier ("ocsvm", "pca", ...).
    fn name(&self) -> &'static str;

    /// Scores every sample; `scores[i]` corresponds to row `i`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] on empty input or solver failure.
    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError>;
}

/// Validates a sample matrix: at least `need` rows. Returns the
/// dimensionality (rectangularity is guaranteed by construction).
pub fn validate_samples(samples: &FeatureMatrix, need: usize) -> Result<usize, MlError> {
    if samples.rows() < need {
        return Err(MlError::TooFewSamples {
            got: samples.rows(),
            need,
        });
    }
    Ok(samples.cols())
}

/// Normalizes scores the way the paper's Figure 5 does: divide everything
/// by the largest positive score so the most-normal sample scores 1.0.
/// Scores are unchanged if no score is positive.
pub fn normalize_scores(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max > 0.0 {
        for s in scores.iter_mut() {
            *s /= max;
        }
    }
}

/// Returns sample indices sorted ascending by score (most suspicious
/// first), ties broken by index for determinism.
pub fn rank_ascending(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_makes_max_one() {
        let mut s = vec![-2.0, 0.5, 4.0];
        normalize_scores(&mut s);
        assert_eq!(s, vec![-0.5, 0.125, 1.0]);
    }

    #[test]
    fn normalize_no_positive_is_identity() {
        let mut s = vec![-3.0, -1.0];
        normalize_scores(&mut s);
        assert_eq!(s, vec![-3.0, -1.0]);
    }

    #[test]
    fn rank_is_ascending_and_stable() {
        let order = rank_ascending(&[0.5, -1.0, 0.5, -2.0]);
        assert_eq!(order, vec![3, 1, 0, 2]);
    }

    #[test]
    fn validate_catches_too_few() {
        let m = FeatureMatrix::from_rows(&[vec![1.0]]).unwrap();
        let e = validate_samples(&m, 2).unwrap_err();
        assert!(matches!(e, MlError::TooFewSamples { got: 1, need: 2 }));
    }

    #[test]
    fn validate_returns_dimension() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(validate_samples(&m, 1).unwrap(), 3);
    }
}
