//! One-class ν-SVM (Schölkopf et al., *Estimating the support of a
//! high-dimensional distribution*, Neural Computation 13(7), 2001) —
//! Sentomist's default symptom-mining detector.
//!
//! # Formulation
//!
//! With samples `x_1..x_l`, the dual solved here (the same one LIBSVM
//! solves for `-s 2`) is
//!
//! ```text
//! min_α  ½ αᵀ Q α      s.t.  0 ≤ α_i ≤ 1,  Σ α_i = ν·l
//! ```
//!
//! with `Q_ij = k(x_i, x_j)`. The decision function is
//! `f(x) = Σ_i α_i k(x_i, x) − ρ`; `ρ` is recovered from the KKT
//! conditions (free support vectors satisfy `(Qα)_i = ρ`). `f` is
//! positive on the "normal" side; Sentomist ranks intervals ascending by
//! `f`, so the most negative samples — farthest outside the estimated
//! support — are inspected first.
//!
//! ν upper-bounds the fraction of outliers (margin violators) and
//! lower-bounds the fraction of support vectors.
//!
//! # Solver
//!
//! Sequential minimal optimization with maximal-violating-pair working-set
//! selection and a dense precomputed Gram matrix (sample counts in this
//! project are ≤ a few thousand). Samples and the Gram matrix are both
//! dense row-major [`FeatureMatrix`] storage, so every inner loop runs
//! over contiguous row slices.

use crate::detector::{validate_samples, MlError, OutlierDetector};
use crate::kernel::Kernel;
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// One-class SVM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcSvmConfig {
    /// ν ∈ (0, 1]: upper bound on the outlier fraction.
    pub nu: f64,
    /// The kernel; `None` selects RBF with `gamma = 1/num_features`.
    pub kernel: Option<Kernel>,
    /// KKT violation tolerance for convergence.
    pub tolerance: f64,
    /// Hard cap on SMO iterations.
    pub max_iterations: usize,
}

impl Default for OcSvmConfig {
    fn default() -> Self {
        OcSvmConfig {
            nu: 0.05,
            kernel: None,
            tolerance: 1e-4,
            max_iterations: 200_000,
        }
    }
}

/// The one-class SVM detector.
///
/// # Examples
///
/// ```
/// use mlcore::{FeatureMatrix, OneClassSvm, OutlierDetector, rank_ascending};
///
/// // A tight cluster and one far point: the far point scores lowest.
/// let mut rows: Vec<Vec<f64>> =
///     (0..40).map(|i| vec![(i % 5) as f64 * 0.1, 0.0]).collect();
/// rows.push(vec![9.0, 9.0]);
/// let samples = FeatureMatrix::from_rows(&rows)?;
/// let scores = OneClassSvm::with_nu(0.1).score(&samples)?;
/// assert_eq!(rank_ascending(&scores)[0], 40);
/// # Ok::<(), mlcore::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OneClassSvm {
    /// Configuration.
    pub config: OcSvmConfig,
}

impl OneClassSvm {
    /// Creates a detector with the given ν and an RBF kernel sized to the
    /// data.
    pub fn with_nu(nu: f64) -> OneClassSvm {
        OneClassSvm {
            config: OcSvmConfig {
                nu,
                ..OcSvmConfig::default()
            },
        }
    }

    /// Fits the model and returns the full solution (dual coefficients,
    /// offset, training-point decision values).
    ///
    /// # Errors
    ///
    /// [`MlError::BadParameter`] for ν outside `(0, 1]` or `ν·l < 1`;
    /// [`MlError::TooFewSamples`] for bad input.
    pub fn fit(&self, samples: &FeatureMatrix) -> Result<OcSvmModel, MlError> {
        let d = validate_samples(samples, 2)?;
        let l = samples.rows();
        let nu = self.config.nu;
        if !(0.0..=1.0).contains(&nu) || nu <= 0.0 {
            return Err(MlError::BadParameter(format!("nu = {nu} outside (0, 1]")));
        }
        let total = nu * l as f64;
        if total < 1.0 {
            return Err(MlError::BadParameter(format!(
                "nu*l = {total:.3} < 1: too few samples for nu = {nu}"
            )));
        }
        let kernel = self.config.kernel.unwrap_or(Kernel::rbf_default(d));
        let q = kernel.gram(samples);

        // LIBSVM-style initialization: the first ⌊ν·l⌋ points get α = 1,
        // the next gets the fractional remainder.
        let mut alpha = vec![0.0f64; l];
        let n_full = total.floor() as usize;
        for a in alpha.iter_mut().take(n_full.min(l)) {
            *a = 1.0;
        }
        if n_full < l {
            alpha[n_full] = total - n_full as f64;
        }

        // Gradient G = Qα.
        let mut grad = vec![0.0f64; l];
        for (i, g_out) in grad.iter_mut().enumerate() {
            let qi = q.row(i);
            let mut g = 0.0;
            for j in 0..l {
                if alpha[j] > 0.0 {
                    g += qi[j] * alpha[j];
                }
            }
            *g_out = g;
        }

        let eps = self.config.tolerance;
        let tau = 1e-12;
        let mut iterations = 0usize;
        let mut converged = false;
        while iterations < self.config.max_iterations {
            iterations += 1;
            // Maximal violating pair: i maximizes -G over α_i < 1,
            // j minimizes -G over α_j > 0.
            let mut i_sel = None;
            let mut i_val = f64::NEG_INFINITY;
            let mut j_sel = None;
            let mut j_val = f64::INFINITY;
            for k in 0..l {
                if alpha[k] < 1.0 && -grad[k] > i_val {
                    i_val = -grad[k];
                    i_sel = Some(k);
                }
                if alpha[k] > 0.0 && -grad[k] < j_val {
                    j_val = -grad[k];
                    j_sel = Some(k);
                }
            }
            let (Some(i), Some(j)) = (i_sel, j_sel) else {
                converged = true;
                break;
            };
            if i_val - j_val < eps {
                converged = true;
                break;
            }
            // Analytic step along (e_i - e_j). Q is symmetric, so the
            // column reads Q[k][i], Q[k][j] of the gradient update are the
            // contiguous row slices Q[i], Q[j].
            let qi = q.row(i);
            let qj = q.row(j);
            let quad = (qi[i] + qj[j] - 2.0 * qi[j]).max(tau);
            let mut delta = (grad[j] - grad[i]) / quad;
            delta = delta.min(1.0 - alpha[i]).min(alpha[j]);
            if delta <= 0.0 {
                // Degenerate (box-bound) pair; numerical convergence.
                converged = true;
                break;
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            for k in 0..l {
                grad[k] += delta * (qi[k] - qj[k]);
            }
        }

        // ρ from the KKT conditions.
        let mut free_sum = 0.0;
        let mut free_count = 0usize;
        let mut upper = f64::INFINITY; // min G over α = 0
        let mut lower = f64::NEG_INFINITY; // max G over α = 1
        for k in 0..l {
            if alpha[k] > 0.0 && alpha[k] < 1.0 {
                free_sum += grad[k];
                free_count += 1;
            } else if alpha[k] <= 0.0 {
                upper = upper.min(grad[k]);
            } else {
                lower = lower.max(grad[k]);
            }
        }
        let rho = if free_count > 0 {
            free_sum / free_count as f64
        } else {
            let lo = if lower.is_finite() { lower } else { upper };
            let hi = if upper.is_finite() { upper } else { lower };
            (lo + hi) / 2.0
        };

        let decision = grad.iter().map(|&g| g - rho).collect();
        let mut support = FeatureMatrix::new(samples.cols());
        let mut alphas = Vec::new();
        for (i, &a) in alpha.iter().enumerate() {
            if a > 0.0 {
                support.push_row(samples.row(i));
                alphas.push(a);
            }
        }
        Ok(OcSvmModel {
            support,
            alphas,
            rho,
            kernel,
            decision,
            iterations,
            converged,
        })
    }
}

impl OutlierDetector for OneClassSvm {
    fn name(&self) -> &'static str {
        "ocsvm"
    }

    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        Ok(self.fit(samples)?.decision)
    }
}

/// A fitted one-class SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcSvmModel {
    /// Support vectors, one per row, in training order.
    pub support: FeatureMatrix,
    /// Dual coefficients `α_i > 0`, aligned with the support rows.
    pub alphas: Vec<f64>,
    /// Decision offset ρ.
    pub rho: f64,
    /// The kernel used.
    pub kernel: Kernel,
    /// Decision values `f(x_i)` of the training samples.
    pub decision: Vec<f64>,
    /// SMO iterations performed.
    pub iterations: usize,
    /// Whether the solver met the KKT tolerance (vs. hitting the
    /// iteration cap).
    pub converged: bool,
}

impl OcSvmModel {
    /// Decision value `f(x)` for an arbitrary point.
    pub fn decide(&self, x: &[f64]) -> f64 {
        let sum: f64 = self
            .support
            .rows_iter()
            .zip(&self.alphas)
            .map(|(sv, a)| a * self.kernel.eval(sv, x))
            .sum();
        sum - self.rho
    }

    /// Number of support vectors.
    pub fn num_support(&self) -> usize {
        self.support.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::rank_ascending;

    /// A tight cluster plus one far outlier.
    fn cluster_with_outlier() -> FeatureMatrix {
        let mut pts: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 * 0.157;
                vec![t.sin() * 0.1, t.cos() * 0.1]
            })
            .collect();
        pts.push(vec![5.0, 5.0]);
        FeatureMatrix::from_rows(&pts).unwrap()
    }

    #[test]
    fn outlier_gets_lowest_score() {
        let pts = cluster_with_outlier();
        let scores = OneClassSvm::with_nu(0.1).score(&pts).unwrap();
        let order = rank_ascending(&scores);
        assert_eq!(order[0], 40, "the far point must rank first");
        assert!(scores[40] < 0.0, "outlier on the negative side");
    }

    #[test]
    fn constraints_hold_after_solve() {
        let pts = cluster_with_outlier();
        let svm = OneClassSvm::with_nu(0.2);
        let model = svm.fit(&pts).unwrap();
        let sum: f64 = model.alphas.iter().sum();
        let expected = 0.2 * pts.rows() as f64;
        assert!(
            (sum - expected).abs() < 1e-9,
            "Σα = ν·l violated: {sum} vs {expected}"
        );
        for a in &model.alphas {
            assert!((0.0..=1.0 + 1e-12).contains(a), "box constraint: {a}");
        }
        assert_eq!(model.support.rows(), model.alphas.len());
        assert!(model.converged);
    }

    #[test]
    fn nu_bounds_outlier_fraction() {
        // At most ν·l samples may end up strictly outside (f < 0), up to
        // the solver's KKT tolerance (Schölkopf Proposition 4): free
        // support vectors sit numerically within ±tolerance of zero, so
        // count only violations clearly beyond it.
        let pts = cluster_with_outlier();
        for nu in [0.05, 0.1, 0.3] {
            let detector = OneClassSvm::with_nu(nu);
            let scores = detector.score(&pts).unwrap();
            let margin = detector.config.tolerance * 10.0;
            let outliers = scores.iter().filter(|&&s| s < -margin).count();
            let bound = (nu * pts.rows() as f64).ceil() as usize;
            assert!(
                outliers <= bound,
                "nu={nu}: {outliers} outliers > bound {bound}"
            );
        }
    }

    #[test]
    fn decide_matches_training_decision() {
        let pts = cluster_with_outlier();
        let model = OneClassSvm::with_nu(0.1).fit(&pts).unwrap();
        for (i, p) in pts.rows_iter().enumerate() {
            assert!(
                (model.decide(p) - model.decision[i]).abs() < 1e-8,
                "sample {i}"
            );
        }
    }

    #[test]
    fn two_dense_clusters_are_both_normal() {
        // The paper's requirement (Section V-B): a 1/3-vs-2/3 split of
        // normal behaviors must NOT be flagged — both modes are dense.
        let mut pts = Vec::new();
        for i in 0..30 {
            let eps = (i % 5) as f64 * 0.01;
            pts.push(vec![0.0 + eps, 0.0]);
        }
        for i in 0..15 {
            let eps = (i % 5) as f64 * 0.01;
            pts.push(vec![1.0 + eps, 1.0]);
        }
        // One true outlier far from both.
        pts.push(vec![10.0, -10.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        // ν must give the dual enough mass (ν·l ≫ 1) for ρ to exceed the
        // outlier's self-kernel term; with RBF and a vanishing
        // cross-kernel, tiny ν·l leaves isolated points on the boundary
        // instead of outside it (a property LIBSVM shares).
        let scores = OneClassSvm::with_nu(0.2).score(&pts).unwrap();
        let order = rank_ascending(&scores);
        assert_eq!(order[0], 45, "true outlier first");
        // All cluster members should score higher than the outlier.
        for i in 0..45 {
            assert!(scores[i] > scores[45]);
        }
    }

    #[test]
    fn bad_nu_rejected() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(matches!(
            OneClassSvm::with_nu(0.0).score(&pts),
            Err(MlError::BadParameter(_))
        ));
        assert!(matches!(
            OneClassSvm::with_nu(1.5).score(&pts),
            Err(MlError::BadParameter(_))
        ));
        // nu*l < 1.
        assert!(matches!(
            OneClassSvm::with_nu(0.01).score(&pts),
            Err(MlError::BadParameter(_))
        ));
    }

    #[test]
    fn identical_points_all_score_equal() {
        let pts = FeatureMatrix::from_rows(&vec![vec![2.0, 3.0]; 20]).unwrap();
        let scores = OneClassSvm::with_nu(0.2).score(&pts).unwrap();
        for w in scores.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_kernel_supported() {
        let mut cfg = OcSvmConfig {
            nu: 0.2,
            kernel: Some(Kernel::Linear),
            ..OcSvmConfig::default()
        };
        cfg.tolerance = 1e-6;
        let detector = OneClassSvm { config: cfg };
        let pts = FeatureMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.1, 0.1],
            vec![0.9, 0.0],
            vec![1.0, 0.1],
            vec![1.05, 0.02],
        ])
        .unwrap();
        let scores = detector.score(&pts).unwrap();
        assert_eq!(scores.len(), 5);
    }

    #[test]
    fn deterministic_fit() {
        let pts = cluster_with_outlier();
        let a = OneClassSvm::with_nu(0.1).fit(&pts).unwrap();
        let b = OneClassSvm::with_nu(0.1).fit(&pts).unwrap();
        assert_eq!(a.decision, b.decision);
        assert_eq!(a.rho, b.rho);
    }
}
