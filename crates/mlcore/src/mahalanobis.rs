//! Mahalanobis-distance outlier detector with covariance shrinkage.
//!
//! Scores each sample by the negated Mahalanobis distance from the sample
//! mean under a shrunk covariance `Σ' = (1-λ)Σ + λ·(tr Σ / d)·I` — the
//! shrinkage keeps `Σ'` positive definite even when instruction counters
//! contain constant or collinear dimensions.

use crate::detector::{validate_samples, MlError, OutlierDetector};
use crate::linalg::{self};
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// Mahalanobis detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MahalanobisConfig {
    /// Shrinkage coefficient λ ∈ (0, 1].
    pub shrinkage: f64,
}

impl Default for MahalanobisConfig {
    fn default() -> Self {
        MahalanobisConfig { shrinkage: 0.1 }
    }
}

/// The Mahalanobis-distance detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MahalanobisDetector {
    /// Configuration.
    pub config: MahalanobisConfig,
}

impl MahalanobisDetector {
    /// Creates a detector with the given shrinkage coefficient.
    pub fn with_shrinkage(shrinkage: f64) -> MahalanobisDetector {
        MahalanobisDetector {
            config: MahalanobisConfig { shrinkage },
        }
    }
}

impl OutlierDetector for MahalanobisDetector {
    fn name(&self) -> &'static str {
        "mahalanobis"
    }

    fn score(&self, samples: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let d = validate_samples(samples, 2)?;
        let lambda = self.config.shrinkage;
        if !(0.0..=1.0).contains(&lambda) || lambda <= 0.0 {
            return Err(MlError::BadParameter(format!(
                "shrinkage {lambda} outside (0, 1]"
            )));
        }
        let mean = linalg::mean(samples);
        let mut cov = linalg::covariance(samples, &mean);
        let trace: f64 = (0..d).map(|i| cov.get(i, i)).sum();
        // For fully degenerate data (trace 0) fall back to the identity so
        // every sample scores 0.
        let ridge = lambda * (trace / d as f64).max(1e-12);
        for i in 0..d {
            let row = cov.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= 1.0 - lambda;
                if i == j {
                    *v += ridge;
                }
            }
        }
        let l = linalg::cholesky(&cov)?;
        let scores = samples
            .rows_iter()
            .map(|s| {
                let centered: Vec<f64> = s.iter().zip(&mean).map(|(a, m)| a - m).collect();
                let solved = linalg::cholesky_solve(&l, &centered);
                -linalg::dot(&centered, &solved).max(0.0).sqrt()
            })
            .collect();
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::rank_ascending;

    #[test]
    fn far_point_ranks_first() {
        let mut pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 4) as f64 * 0.1, (i % 5) as f64 * 0.1])
            .collect();
        pts.push(vec![50.0, -50.0]);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = MahalanobisDetector::default().score(&pts).unwrap();
        assert_eq!(rank_ascending(&scores)[0], 20);
    }

    #[test]
    fn accounts_for_correlation() {
        // Data stretched along y = x. A point at distance r along the
        // ridge is less anomalous than the same r across it.
        let mut pts: Vec<Vec<f64>> = (-10..=10).map(|i| vec![i as f64, i as f64]).collect();
        let along = vec![8.0, 8.0];
        let across = vec![5.66, -5.66]; // same Euclidean norm as (8,8)
        pts.push(along);
        pts.push(across);
        let pts = FeatureMatrix::from_rows(&pts).unwrap();
        let scores = MahalanobisDetector::with_shrinkage(0.05)
            .score(&pts)
            .unwrap();
        let n = pts.rows();
        assert!(
            scores[n - 1] < scores[n - 2],
            "across-ridge point must be more anomalous"
        );
    }

    #[test]
    fn degenerate_constant_data_ok() {
        let pts = FeatureMatrix::from_rows(&vec![vec![4.0, 4.0]; 8]).unwrap();
        let scores = MahalanobisDetector::default().score(&pts).unwrap();
        for s in scores {
            assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn bad_shrinkage_rejected() {
        let pts = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(MahalanobisDetector::with_shrinkage(0.0)
            .score(&pts)
            .is_err());
        assert!(MahalanobisDetector::with_shrinkage(2.0)
            .score(&pts)
            .is_err());
    }
}
