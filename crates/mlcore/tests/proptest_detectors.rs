//! Property tests for the detector suite: the one-class SVM's dual
//! constraints and ν-bound, scaler range guarantees, and ranking-utility
//! invariants, over randomized sample sets.

use mlcore::{
    normalize_scores, rank_ascending, FeatureMatrix, KdeDetector, KfdDetector, KnnDetector,
    MahalanobisDetector, OneClassSvm, OutlierDetector, PcaDetector, Scaler,
};
use proptest::prelude::*;

/// Random rectangular sample sets: n points in d dimensions, values in a
/// bounded range (instruction counters are nonnegative and bounded).
fn raw_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (4usize..40, 1usize..6).prop_flat_map(|(n, d)| {
        prop::collection::vec(prop::collection::vec(0.0f64..1000.0, d..=d), n..=n)
    })
}

fn sample_set() -> impl Strategy<Value = FeatureMatrix> {
    raw_rows().prop_map(|rows| FeatureMatrix::from_rows(&rows).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ocsvm_dual_constraints_hold(samples in sample_set(), nu in 0.2f64..0.9) {
        let svm = OneClassSvm::with_nu(nu);
        prop_assume!(nu * samples.rows() as f64 >= 1.0);
        let model = svm.fit(&samples).unwrap();
        let sum: f64 = model.alphas.iter().sum();
        prop_assert!((sum - nu * samples.rows() as f64).abs() < 1e-6,
            "sum alpha = {} vs nu*l = {}", sum, nu * samples.rows() as f64);
        for a in &model.alphas {
            prop_assert!(*a > 0.0 && *a <= 1.0 + 1e-9);
        }
        // Support-vector lower bound: at least ceil(nu*l) - small slack
        // points carry positive alpha (Schölkopf Prop. 4).
        prop_assert!(model.num_support() as f64 + 1e-9 >= nu * samples.rows() as f64);
    }

    #[test]
    fn ocsvm_nu_bounds_margin_violations(samples in sample_set()) {
        let nu = 0.3;
        let svm = OneClassSvm::with_nu(nu);
        prop_assume!(nu * samples.rows() as f64 >= 1.0);
        let scores = svm.score(&samples).unwrap();
        let margin = svm.config.tolerance * 10.0;
        let violators = scores.iter().filter(|&&s| s < -margin).count();
        prop_assert!(violators as f64 <= nu * samples.rows() as f64 + 1.0);
    }

    #[test]
    fn detectors_return_finite_scores(samples in sample_set()) {
        let detectors: Vec<Box<dyn OutlierDetector>> = vec![
            Box::new(OneClassSvm::with_nu(0.5)),
            Box::new(PcaDetector::default()),
            Box::new(KnnDetector::default()),
            Box::new(MahalanobisDetector::default()),
            Box::new(KdeDetector::default()),
            Box::new(KfdDetector::default()),
        ];
        for det in detectors {
            let scores = det.score(&samples).unwrap();
            prop_assert_eq!(scores.len(), samples.rows(), "{}", det.name());
            for s in &scores {
                prop_assert!(s.is_finite(), "{} produced {}", det.name(), s);
            }
        }
    }

    #[test]
    fn scaler_maps_fit_data_into_unit_box(samples in sample_set()) {
        let scaled = Scaler::fit_transform(&samples);
        for row in scaled.rows_iter() {
            for &v in row {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn scaling_is_translation_invariant_for_ranking(samples in sample_set(), shift in -500.0f64..500.0) {
        // Shifting every feature by a constant must not change the kNN
        // ranking after scaling.
        let mut shifted = samples.clone();
        for v in shifted.as_mut_slice() {
            *v += shift;
        }
        let a = KnnDetector::default()
            .score(&Scaler::fit_transform(&samples))
            .unwrap();
        let b = KnnDetector::default()
            .score(&Scaler::fit_transform(&shifted))
            .unwrap();
        // Exact rank equality can flip on floating-point ties; the scores
        // themselves must agree to within rounding.
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
        }
    }

    #[test]
    fn normalize_keeps_order_and_caps_at_one(mut scores in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let before = rank_ascending(&scores);
        normalize_scores(&mut scores);
        let after = rank_ascending(&scores);
        prop_assert_eq!(before, after, "normalization must preserve order");
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(max <= 1.0 + 1e-12);
    }

    #[test]
    fn from_rows_row_views_round_trip(rows in raw_rows()) {
        // The migration shim must preserve every value and shape: packing
        // arbitrary rectangular input and reading it back through row
        // views reproduces the original rows bit-for-bit.
        let m = FeatureMatrix::from_rows(&rows).unwrap();
        prop_assert_eq!(m.rows(), rows.len());
        prop_assert_eq!(m.cols(), rows[0].len());
        for (view, original) in m.rows_iter().zip(&rows) {
            prop_assert_eq!(view, original.as_slice());
        }
        prop_assert_eq!(m.to_rows(), rows);
    }

    #[test]
    fn rank_ascending_is_a_sorted_permutation(scores in prop::collection::vec(-10.0f64..10.0, 0..40)) {
        let order = rank_ascending(&scores);
        let mut seen = vec![false; scores.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(scores[w[0]] <= scores[w[1]]);
        }
    }
}
