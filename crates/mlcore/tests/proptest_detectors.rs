//! Property tests for the detector suite: the one-class SVM's dual
//! constraints and ν-bound, scaler range guarantees, and ranking-utility
//! invariants, over randomized sample sets.

use mlcore::{
    normalize_scores, rank_ascending, KdeDetector, KfdDetector, KnnDetector, MahalanobisDetector,
    OneClassSvm, OutlierDetector, PcaDetector, Scaler,
};
use proptest::prelude::*;

/// Random rectangular sample sets: n points in d dimensions, values in a
/// bounded range (instruction counters are nonnegative and bounded).
fn sample_set() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (4usize..40, 1usize..6).prop_flat_map(|(n, d)| {
        prop::collection::vec(prop::collection::vec(0.0f64..1000.0, d..=d), n..=n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ocsvm_dual_constraints_hold(samples in sample_set(), nu in 0.2f64..0.9) {
        let svm = OneClassSvm::with_nu(nu);
        prop_assume!(nu * samples.len() as f64 >= 1.0);
        let model = svm.fit(&samples).unwrap();
        let sum: f64 = model.support.iter().map(|(_, a)| a).sum();
        prop_assert!((sum - nu * samples.len() as f64).abs() < 1e-6,
            "sum alpha = {} vs nu*l = {}", sum, nu * samples.len() as f64);
        for (_, a) in &model.support {
            prop_assert!(*a > 0.0 && *a <= 1.0 + 1e-9);
        }
        // Support-vector lower bound: at least ceil(nu*l) - small slack
        // points carry positive alpha (Schölkopf Prop. 4).
        prop_assert!(model.num_support() as f64 + 1e-9 >= nu * samples.len() as f64);
    }

    #[test]
    fn ocsvm_nu_bounds_margin_violations(samples in sample_set()) {
        let nu = 0.3;
        let svm = OneClassSvm::with_nu(nu);
        prop_assume!(nu * samples.len() as f64 >= 1.0);
        let scores = svm.score(&samples).unwrap();
        let margin = svm.config.tolerance * 10.0;
        let violators = scores.iter().filter(|&&s| s < -margin).count();
        prop_assert!(violators as f64 <= nu * samples.len() as f64 + 1.0);
    }

    #[test]
    fn detectors_return_finite_scores(samples in sample_set()) {
        let detectors: Vec<Box<dyn OutlierDetector>> = vec![
            Box::new(OneClassSvm::with_nu(0.5)),
            Box::new(PcaDetector::default()),
            Box::new(KnnDetector::default()),
            Box::new(MahalanobisDetector::default()),
            Box::new(KdeDetector::default()),
            Box::new(KfdDetector::default()),
        ];
        for det in detectors {
            let scores = det.score(&samples).unwrap();
            prop_assert_eq!(scores.len(), samples.len(), "{}", det.name());
            for s in &scores {
                prop_assert!(s.is_finite(), "{} produced {}", det.name(), s);
            }
        }
    }

    #[test]
    fn scaler_maps_fit_data_into_unit_box(samples in sample_set()) {
        let scaled = Scaler::fit_transform(&samples);
        for row in &scaled {
            for &v in row {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn scaling_is_translation_invariant_for_ranking(samples in sample_set(), shift in -500.0f64..500.0) {
        // Shifting every feature by a constant must not change the kNN
        // ranking after scaling.
        let shifted: Vec<Vec<f64>> = samples
            .iter()
            .map(|r| r.iter().map(|v| v + shift).collect())
            .collect();
        let a = KnnDetector::default()
            .score(&Scaler::fit_transform(&samples))
            .unwrap();
        let b = KnnDetector::default()
            .score(&Scaler::fit_transform(&shifted))
            .unwrap();
        // Exact rank equality can flip on floating-point ties; the scores
        // themselves must agree to within rounding.
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
        }
    }

    #[test]
    fn normalize_keeps_order_and_caps_at_one(mut scores in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let before = rank_ascending(&scores);
        normalize_scores(&mut scores);
        let after = rank_ascending(&scores);
        prop_assert_eq!(before, after, "normalization must preserve order");
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(max <= 1.0 + 1e-12);
    }

    #[test]
    fn rank_ascending_is_a_sorted_permutation(scores in prop::collection::vec(-10.0f64..10.0, 0..40)) {
        let order = rank_ascending(&scores);
        let mut seen = vec![false; scores.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(scores[w[0]] <= scores[w[1]]);
        }
    }
}
