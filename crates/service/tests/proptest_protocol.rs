//! Protocol hardening: arbitrary, truncated, corrupted and oversized
//! byte strings fed to the frame decoder return typed errors — never a
//! panic, never an allocation beyond the declared-length cap — and any
//! valid frame decodes identically no matter how the wire chops it
//! into read-sized pieces.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use sentomist_service::protocol::{
    decode_frame, encode_frame, payload_checksum, read_frame, Frame, FrameKind, ProtocolError,
    Request, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
use std::io::Read;

/// A reader that hands back a frame's bytes in caller-chosen chunk
/// sizes — the in-memory twin of the chaos proxy's split-writes fault.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    turn: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> ChunkedReader {
        ChunkedReader {
            data,
            pos: 0,
            chunks,
            turn: 0,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.chunks[self.turn % self.chunks.len()].max(1);
        self.turn += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Regression: a frame whose 14-byte header arrives split across two
/// reads (every possible split point, including mid-length and
/// mid-checksum) must decode identically to a single-read delivery.
#[test]
fn header_split_across_reads_decodes_identically() {
    let payload = b"split-header regression payload";
    let bytes = encode_frame(FrameKind::Request, payload).unwrap();
    for cut in 1..HEADER_LEN {
        let mut reader = ChunkedReader::new(bytes.clone(), vec![cut, bytes.len()]);
        let frame =
            read_frame(&mut reader).unwrap_or_else(|e| panic!("header split at {cut} failed: {e}"));
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.payload, payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Completely arbitrary bytes: the decoder classifies them or
    /// rejects them, it never panics. (This is the no-panic guarantee —
    /// the test passing at all means no input crashed the decoder.)
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..64),
    ) {
        match decode_frame(&bytes) {
            Ok((frame, consumed)) => {
                // Anything accepted must be a genuinely well-formed frame.
                assert!(consumed >= HEADER_LEN && consumed <= bytes.len());
                assert_eq!(frame.payload.len(), consumed - HEADER_LEN);
                assert_eq!(&bytes[..4], &MAGIC);
            }
            Err(
                ProtocolError::BadMagic(_)
                | ProtocolError::BadVersion(_)
                | ProtocolError::BadKind(_)
                | ProtocolError::Oversized { .. }
                | ProtocolError::Truncated { .. }
                | ProtocolError::Checksum { .. },
            ) => {}
            Err(other) => panic!("unexpected decode error class: {other:?}"),
        }
        // The streaming reader agrees: same classification, no panic.
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame(&mut cursor);
    }

    /// Every truncation of a valid frame is a typed `Truncated` error
    /// carrying honest needed/got counts.
    #[test]
    fn every_truncation_is_typed(
        payload in prop::collection::vec(0u8..=255, 0..48),
        kind_raw in 1u8..6,
        cut_fraction in 0.0f64..1.0,
    ) {
        let kind = FrameKind::from_byte(kind_raw).unwrap();
        let bytes = encode_frame(kind, &payload).unwrap();
        let cut = ((bytes.len() as f64 - 1.0) * cut_fraction) as usize;
        match decode_frame(&bytes[..cut]) {
            Err(ProtocolError::Truncated { needed, got }) => {
                assert_eq!(got, cut);
                assert!(needed > cut);
                assert!(needed <= bytes.len());
            }
            other => panic!("cut at {cut} of {} gave {other:?}", bytes.len()),
        }
        let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    /// Any header declaring a payload beyond the cap is rejected from
    /// the 14 header bytes alone — before any payload allocation — no
    /// matter what kind byte it carries or how much data follows.
    #[test]
    fn oversized_declarations_never_allocate(
        kind_raw in 1u8..6,
        excess in 1u32..=1024,
        trailing in prop::collection::vec(0u8..=255, 0..16),
    ) {
        let declared = MAX_PAYLOAD + excess;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(kind_raw);
        bytes.extend_from_slice(&declared.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // checksum field
        bytes.extend_from_slice(&trailing);
        match decode_frame(&bytes) {
            Err(ProtocolError::Oversized { declared: d, max }) => {
                assert_eq!(d, declared);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Streaming: the reader refuses after the header and never
        // waits for (or reserves space for) the declared gigabytes.
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    /// Arbitrary request-frame payloads (usually invalid JSON) parse to
    /// a typed `Malformed` error or a valid request — never a panic.
    #[test]
    fn arbitrary_request_payloads_never_panic(
        payload in prop::collection::vec(0u8..=255, 0..64),
    ) {
        match Request::from_bytes(&payload) {
            Ok(_) | Err(ProtocolError::Malformed(_)) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }

    /// Well-formed frames always round-trip bit-exactly through
    /// encode → decode, and decode reports the exact length consumed.
    #[test]
    fn well_formed_frames_round_trip(
        payload in prop::collection::vec(0u8..=255, 0..256),
        kind_raw in 1u8..6,
    ) {
        let kind = FrameKind::from_byte(kind_raw).unwrap();
        let bytes = encode_frame(kind, &payload).unwrap();
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame, Frame { kind, payload });
    }

    /// Chunked delivery equivalence: a valid frame handed to the
    /// streaming reader in arbitrary 1..8-byte pieces decodes to
    /// exactly the frame a single contiguous read produces.
    #[test]
    fn any_chunked_delivery_decodes_equivalently(
        payload in prop::collection::vec(0u8..=255, 0..192),
        kind_raw in 1u8..6,
        chunks in prop::collection::vec(1usize..8, 1..48),
    ) {
        let kind = FrameKind::from_byte(kind_raw).unwrap();
        let bytes = encode_frame(kind, &payload).unwrap();
        let (whole, _) = decode_frame(&bytes).unwrap();
        let mut reader = ChunkedReader::new(bytes, chunks);
        let chunked = read_frame(&mut reader).unwrap();
        assert_eq!(chunked, whole);
        assert_eq!(chunked, Frame { kind, payload });
    }

    /// Flipping any single payload byte of a valid frame trips the
    /// checksum — the wire-corruption guarantee the byte-identity
    /// contract rests on.
    #[test]
    fn single_byte_corruption_always_trips_the_checksum(
        payload in prop::collection::vec(0u8..=255, 1..128),
        kind_raw in 1u8..6,
        at_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let kind = FrameKind::from_byte(kind_raw).unwrap();
        let mut bytes = encode_frame(kind, &payload).unwrap();
        let at = HEADER_LEN + ((payload.len() - 1) as f64 * at_fraction) as usize;
        bytes[at] ^= flip;
        match decode_frame(&bytes) {
            Err(ProtocolError::Checksum { declared, actual }) => {
                assert_eq!(declared, payload_checksum(&payload));
                assert_ne!(declared, actual);
            }
            other => panic!("corruption at {at} gave {other:?}"),
        }
    }
}
