//! A minimal blocking client for the daemon's protocol — what the load
//! generator, the tests and the CI smoke job speak.

use crate::protocol::{read_frame, write_frame, FrameKind, ProtocolError, Request, Response};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client. One request/response at a time, in order; open
/// several clients for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] on connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ProtocolError> {
        let stream = TcpStream::connect(addr).map_err(|e| ProtocolError::Io(e.to_string()))?;
        Ok(Client { stream })
    }

    /// Connects with a connect timeout (needs a resolved address).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] on resolve or connect failure.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, ProtocolError> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| ProtocolError::Io(e.to_string()))?
            .next()
            .ok_or_else(|| ProtocolError::Io("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)
            .map_err(|e| ProtocolError::Io(e.to_string()))?;
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] on the wire.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        let payload = request.to_bytes()?;
        write_frame(&mut self.stream, FrameKind::Request, &payload)?;
        Response::from_frame(read_frame(&mut self.stream)?)
    }
}

/// One-shot convenience: connect, send, receive, disconnect.
///
/// # Errors
///
/// Any [`ProtocolError`].
pub fn request<A: ToSocketAddrs>(addr: A, request: &Request) -> Result<Response, ProtocolError> {
    Client::connect(addr)?.request(request)
}
