//! The blocking client for the daemon's protocol — what the load
//! generator, the tests and the CI smoke job speak.
//!
//! Two layers:
//!
//! * [`Client`] — one connection, one request/response at a time, with
//!   optional connect/read/write deadlines ([`ClientConfig`]);
//! * [`request_with_retry`] — the self-healing path: a typed
//!   [`RetryPolicy`] with **deterministic, seed-derived backoff**
//!   (reusing `core::supervise`'s [`backoff_delay_ms`] shape) that
//!   opens a fresh connection per attempt and replays only
//!   [idempotent](Request::is_idempotent) requests. A failure class
//!   that means "the daemon never ran this" (connect failure, a
//!   `Reject` frame) and one that is ambiguous (the wire died after
//!   the request was sent) are both retried — but only when replaying
//!   is safe by the request's own contract. `Shutdown` is never
//!   retried. `Overloaded` is a *final* answer, not a failure:
//!   retrying into a shedding daemon would amplify exactly the load it
//!   is shedding.

use crate::protocol::{
    read_frame_deadline, write_frame, FrameKind, ProtocolError, Request, Response,
};
use sentomist_core::supervise::backoff_delay_ms;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection-level deadlines. The default is fully blocking (no
/// deadlines) so existing callers keep their semantics; services and
/// the load generator use [`ClientConfig::service_defaults`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientConfig {
    /// TCP connect timeout. `None` blocks on the OS default.
    pub connect_timeout: Option<Duration>,
    /// Overall deadline for receiving one complete response frame,
    /// however the bytes are chopped. `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Per-write deadline toward the daemon. `None` blocks forever.
    pub write_timeout: Option<Duration>,
}

impl ClientConfig {
    /// Deadlines tuned for talking to a live daemon over a possibly
    /// bad network: 2 s to connect, 30 s per response frame (mine jobs
    /// replay a corpus), 10 s per write.
    pub fn service_defaults() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// Where in a request's life the wire failed — the classification the
/// retry policy (and the load generator's exit codes) turn on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFailure {
    /// Connecting failed: the request was never sent.
    Connect(ProtocolError),
    /// The wire failed after connecting (send, receive, deadline,
    /// corruption): the daemon may or may not have run the request.
    Wire(ProtocolError),
    /// The daemon answered `Reject`: the request reached it but never
    /// ran (bad frame, checksum mismatch, deadline mid-frame). Safe to
    /// retry by construction.
    Rejected(String),
}

impl std::fmt::Display for WireFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFailure::Connect(e) => write!(f, "connect: {e}"),
            WireFailure::Wire(e) => write!(f, "wire: {e}"),
            WireFailure::Rejected(reason) => write!(f, "rejected by daemon: {reason}"),
        }
    }
}

/// A request that failed after exhausting its retry budget (or that
/// was not safe to retry at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientError {
    /// Attempts actually made (1 = no retries happened).
    pub attempts: u32,
    /// The last failure observed.
    pub failure: WireFailure,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (after {} attempt(s))", self.failure, self.attempts)
    }
}

impl std::error::Error for ClientError {}

/// The deterministic retry policy: attempt `1 + max_retries` times,
/// sleeping [`backoff_delay_ms`]`(seed, attempt, backoff_base_ms)`
/// between attempts — the same seed always produces the same backoff
/// schedule, so a chaos soak is replayable end to end.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff in milliseconds (doubled per attempt, seed-jittered).
    pub backoff_base_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 10,
            seed: 0x5EED,
        }
    }
}

/// What a [`request_with_retry`] call observed on the way to its
/// answer — the counters the load generator aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (1 = clean first try).
    pub attempts: u32,
    /// Retries performed (`attempts - 1`).
    pub retries: u32,
    /// Attempts that failed to connect.
    pub connect_failures: u32,
    /// Attempts that died on the wire after connecting.
    pub wire_failures: u32,
    /// Attempts answered with a `Reject` frame.
    pub rejects: u32,
    /// Total milliseconds slept in backoff.
    pub backoff_ms_total: u64,
}

/// A connected client. One request/response at a time, in order; open
/// several clients for concurrency.
pub struct Client {
    stream: TcpStream,
    config: ClientConfig,
}

impl Client {
    /// Connects to the daemon with no deadlines (legacy behavior).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] on connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ProtocolError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with a connect timeout (needs a resolved address).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] on resolve or connect failure.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, ProtocolError> {
        Client::connect_with(
            addr,
            ClientConfig {
                connect_timeout: Some(timeout),
                ..ClientConfig::default()
            },
        )
    }

    /// Connects under a full [`ClientConfig`]: connect deadline now,
    /// read/write deadlines applied to every subsequent request.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] on resolve or connect failure.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<Client, ProtocolError> {
        let io_err = |e: std::io::Error| ProtocolError::Io(e.to_string());
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr).map_err(io_err)?,
            Some(timeout) => {
                let resolved = addr
                    .to_socket_addrs()
                    .map_err(io_err)?
                    .next()
                    .ok_or_else(|| ProtocolError::Io("address resolved to nothing".into()))?;
                TcpStream::connect_timeout(&resolved, timeout).map_err(io_err)?
            }
        };
        stream
            .set_write_timeout(config.write_timeout)
            .map_err(io_err)?;
        Ok(Client { stream, config })
    }

    /// Sends one request and blocks for its response, bounded by the
    /// configured deadlines.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] on the wire; a response that stalls past
    /// the read deadline is [`ProtocolError::Deadline`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        let payload = request.to_bytes()?;
        write_frame(&mut self.stream, FrameKind::Request, &payload)?;
        Response::from_frame(read_frame_deadline(&self.stream, self.config.read_timeout)?)
    }
}

/// One-shot convenience: connect, send, receive, disconnect. No
/// deadlines, no retries (legacy behavior).
///
/// # Errors
///
/// Any [`ProtocolError`].
pub fn request<A: ToSocketAddrs>(addr: A, request: &Request) -> Result<Response, ProtocolError> {
    Client::connect(addr)?.request(request)
}

/// The self-healing request path: a fresh connection per attempt,
/// deadlines from `config`, deterministic seed-derived backoff between
/// attempts, and retries **only** when replaying is safe — the request
/// must be [idempotent](Request::is_idempotent) (`Shutdown` in
/// particular is never retried). `Ok`, `Error` and `Overloaded`
/// responses are final answers; connect failures, wire failures and
/// `Reject` frames are the retryable classes.
///
/// # Errors
///
/// [`ClientError`] with the last [`WireFailure`] once the retry budget
/// is exhausted (or immediately, for a non-idempotent request).
pub fn request_with_retry<A: ToSocketAddrs + Clone>(
    addr: A,
    request: &Request,
    config: &ClientConfig,
    policy: &RetryPolicy,
) -> Result<(Response, RetryStats), ClientError> {
    let mut stats = RetryStats::default();
    let budget = if request.is_idempotent() {
        policy.max_retries
    } else {
        0
    };
    let mut attempt: u32 = 0;
    loop {
        stats.attempts += 1;
        let failure = match try_once(addr.clone(), request, config) {
            Ok(response) => return Ok((response, stats)),
            Err(failure) => failure,
        };
        match &failure {
            WireFailure::Connect(_) => stats.connect_failures += 1,
            WireFailure::Wire(_) => stats.wire_failures += 1,
            WireFailure::Rejected(_) => stats.rejects += 1,
        }
        if attempt >= budget {
            return Err(ClientError {
                attempts: stats.attempts,
                failure,
            });
        }
        let delay = backoff_delay_ms(policy.seed, attempt, policy.backoff_base_ms);
        stats.backoff_ms_total += delay;
        stats.retries += 1;
        std::thread::sleep(Duration::from_millis(delay));
        attempt += 1;
    }
}

/// One attempt: connect, send, receive, classify.
fn try_once<A: ToSocketAddrs>(
    addr: A,
    request: &Request,
    config: &ClientConfig,
) -> Result<Response, WireFailure> {
    let mut client = Client::connect_with(addr, *config).map_err(WireFailure::Connect)?;
    match client.request(request) {
        Ok(Response::Rejected(reason)) => Err(WireFailure::Rejected(reason)),
        Ok(response) => Ok(response),
        Err(e) => Err(WireFailure::Wire(e)),
    }
}
