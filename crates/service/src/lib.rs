//! # sentomist-service — the long-running symptom-mining service
//!
//! Sentomist's record-once / re-mine-forever model stops needing a
//! fresh process per query here: `sentomistd` keeps a corpus-backed
//! mining daemon resident and answers emulate / mine / lint / hunt
//! jobs over a length-prefixed binary protocol on TCP (`std::net`
//! only — no external dependencies, per the offline-shims policy).
//!
//! The architecture, front to back:
//!
//! * [`protocol`] — 14-byte-header frames (magic, version, kind,
//!   length, FNV-1a-32 payload checksum) with the payload length
//!   capped **before** allocation; every malformed input is a typed
//!   [`ProtocolError`], never a panic, and in-flight corruption is
//!   caught by the checksum. `Ok` responses carry raw result bytes, so
//!   a mine answer is byte-identical to `sentomist trace mine --json`
//!   output.
//! * [`queue`] — the bounded admission queue: when it is full the job
//!   is shed immediately with an `Overloaded` frame (backpressure),
//!   never buffered without bound.
//! * [`server`] — the accept loop (per-connection read/write
//!   deadlines, a bounded connection cap with typed shedding, tracked
//!   handler threads provably joined at shutdown) and a supervised
//!   worker fleet reusing `core::supervise` (panic isolation, watchdog
//!   timeouts, deterministic retry), so one poisoned job or one
//!   slow-loris peer never takes the daemon down.
//! * [`cache`] — a read-through result cache keyed on the corpus
//!   identity and validated against the store's generation-stamped
//!   [`CorpusFingerprint`](sentomist_tracestore::CorpusFingerprint),
//!   so repeated mines of an unchanged store skip the replay entirely.
//! * [`client`] — the blocking client the load generator and tests
//!   use, now with I/O deadlines and a typed, seed-deterministic retry
//!   policy that replays only idempotent requests.
//! * [`chaosproxy`] — a seeded in-process TCP fault proxy (mid-frame
//!   disconnects, split writes, slow-loris stalls, truncations,
//!   single-byte corruption) driving the wire-fault soak; every
//!   failure is replayable as a pure function of (seed, connection
//!   index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaosproxy;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use chaosproxy::{ChaosProxy, ConnFault, Direction, FaultPlan, ProxyStats, WireFault};
pub use client::{
    request, request_with_retry, Client, ClientConfig, ClientError, RetryPolicy, RetryStats,
    WireFailure,
};
pub use protocol::{
    decode_frame, encode_frame, payload_checksum, read_frame, write_frame, Frame, FrameKind,
    ProtocolError, Request, Response, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use queue::{Admission, AdmissionError};
pub use server::{Server, ServiceConfig, ServiceError, ShutdownReport, StatsSnapshot};
