//! # sentomist-service — the long-running symptom-mining service
//!
//! Sentomist's record-once / re-mine-forever model stops needing a
//! fresh process per query here: `sentomistd` keeps a corpus-backed
//! mining daemon resident and answers emulate / mine / lint / hunt
//! jobs over a length-prefixed binary protocol on TCP (`std::net`
//! only — no external dependencies, per the offline-shims policy).
//!
//! The architecture, front to back:
//!
//! * [`protocol`] — 10-byte-header frames with the payload length
//!   capped **before** allocation; every malformed input is a typed
//!   [`ProtocolError`], never a panic. `Ok` responses carry raw result
//!   bytes, so a mine answer is byte-identical to `sentomist trace
//!   mine --json` output.
//! * [`queue`] — the bounded admission queue: when it is full the job
//!   is shed immediately with an `Overloaded` frame (backpressure),
//!   never buffered without bound.
//! * [`server`] — the accept loop and a supervised worker fleet
//!   reusing `core::supervise` (panic isolation, watchdog timeouts,
//!   deterministic retry), so one poisoned job never takes the daemon
//!   down.
//! * [`cache`] — a read-through result cache keyed on the corpus
//!   identity and validated against the store's generation-stamped
//!   [`CorpusFingerprint`](sentomist_tracestore::CorpusFingerprint),
//!   so repeated mines of an unchanged store skip the replay entirely.
//! * [`client`] — the blocking client the load generator and tests use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use client::{request, Client};
pub use protocol::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameKind, ProtocolError, Request,
    Response, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use queue::{Admission, AdmissionError};
pub use server::{Server, ServiceConfig, ServiceError, StatsSnapshot};
