//! The daemon: accept loop, connection handling, supervised worker
//! fleet, and the job handlers.
//!
//! Life of a request: a tracked connection thread reads one frame
//! under the per-frame read deadline, parses the [`Request`], and
//! **tries** to admit it to the bounded queue. At capacity the job is
//! shed right there with an [`Overloaded`](Response::Overloaded) frame
//! — backpressure, never unbounded buffering. A worker pops the job
//! and runs its handler under [`supervise_once`] — the same fault
//! envelope a campaign seed gets: panic isolation, watchdog timeout,
//! deterministic retry — so a poisoned job answers with a typed error
//! instead of taking the daemon down. Mine jobs consult the
//! fingerprint-validated [`ResultCache`](crate::cache::ResultCache)
//! before touching the store.
//!
//! The wire-fault hardening (PR 10) lives at the connection layer:
//!
//! * every handler thread is registered in a connection registry —
//!   its stream kept for the shutdown kick, its `JoinHandle` reaped as
//!   connections finish and **joined** at shutdown, so the
//!   [`ShutdownReport`] can prove zero leaked threads under any fault
//!   plan;
//! * each connection carries a read deadline (per *frame*, re-armed
//!   with the remaining budget on every read, so a slow-loris drip
//!   cannot reset it) and a write deadline;
//! * connections beyond [`ServiceConfig::max_connections`] are shed
//!   with a typed `Overloaded` frame instead of an accept backlog;
//! * wire-level failures — unparseable frames, checksum mismatches,
//!   deadline expiries — answer with [`Response::Rejected`], meaning
//!   "nothing ran, safe to retry", distinct from `Error` ("your job
//!   ran and failed").

use crate::cache::{CacheKey, ResultCache};
use crate::protocol::{
    read_frame_deadline, write_frame, FrameKind, ProtocolError, Request, Response, MAX_PAYLOAD,
};
use crate::queue::{Admission, AdmissionError};
use sentomist_apps::{bundled_program, mine_corpus, CorpusMineOptions, HuntCase, Mode, Variant};
use sentomist_core::hunt::InvariantPolicy;
use sentomist_core::supervise::{supervise_once, RunFailure, SupervisorOptions};
use sentomist_tracestore::TraceStore;
use serde::Serialize;
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the daemon is shaped. All knobs have serving-friendly defaults.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded admission-queue capacity (jobs beyond it are shed).
    pub queue_capacity: usize,
    /// Result-cache capacity in documents.
    pub cache_capacity: usize,
    /// Retries for transiently failing jobs (0 = fail fast).
    pub max_retries: u32,
    /// Watchdog wall-clock limit per job attempt.
    pub timeout: Option<Duration>,
    /// Threads a single mine job sweeps the store with (never affects
    /// document bytes).
    pub mine_threads: usize,
    /// Per-frame read deadline on every connection: the total time a
    /// peer gets to deliver one complete request frame, however it
    /// chops the bytes. `None` disables it (a slow-loris then holds
    /// its handler thread forever — only for tests).
    pub read_timeout: Option<Duration>,
    /// Write deadline per socket write toward a client. `None`
    /// disables it.
    pub write_timeout: Option<Duration>,
    /// Concurrent-connection cap: accepts beyond it are shed with a
    /// typed `Overloaded` frame instead of queueing an unbounded
    /// accept backlog. `0` disables the cap.
    pub max_connections: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 16,
            max_retries: 0,
            timeout: None,
            mine_threads: 1,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_connections: 256,
        }
    }
}

/// A service-layer failure (distinct from per-job errors, which travel
/// back to clients as [`Response::Error`]).
#[derive(Debug)]
pub enum ServiceError {
    /// Binding or accepting on the listen socket failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service i/o: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The service counters a `Stats` request snapshots.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Jobs answered `Ok`.
    pub completed: u64,
    /// Jobs answered `Error` (handler failed, panicked or timed out).
    pub failed: u64,
    /// Jobs shed with `Overloaded` at admission.
    pub shed: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections shed at the concurrency cap.
    pub connections_shed: u64,
    /// Connection handler threads alive right now.
    pub live_connections: u64,
    /// Requests answered `Rejected` (wire-level: bad frame, checksum
    /// mismatch, deadline expiry — the job never ran).
    pub rejected: u64,
    /// Connections cut by the per-frame read deadline mid-frame.
    pub deadline_cuts: u64,
    /// Mine documents served from the result cache.
    pub cache_hits: u64,
    /// Mine lookups that went to the store.
    pub cache_misses: u64,
    /// Jobs queued right now.
    pub queue_depth: u64,
    /// The admission queue's capacity.
    pub queue_capacity: u64,
    /// Worker threads in the fleet.
    pub workers: u64,
}

/// What shutdown proved: every thread the daemon ever spawned,
/// accounted for. `handlers_spawned == handlers_joined` (with
/// `handlers_panicked` of those joins observing a panic) is the
/// no-thread-leak guarantee the wire-fault soak asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShutdownReport {
    /// Connection handler threads spawned over the daemon's lifetime
    /// (including cap-shed connections).
    pub handlers_spawned: u64,
    /// Handler threads joined (reaped during the run or at shutdown).
    pub handlers_joined: u64,
    /// Joined handler threads that had panicked.
    pub handlers_panicked: u64,
    /// Worker threads joined.
    pub workers_joined: u64,
}

impl ShutdownReport {
    /// True iff every spawned thread was joined and none panicked.
    pub fn clean(&self) -> bool {
        self.handlers_spawned == self.handlers_joined && self.handlers_panicked == 0
    }
}

struct Counters {
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    connections: AtomicU64,
    connections_shed: AtomicU64,
    rejected: AtomicU64,
    deadline_cuts: AtomicU64,
    job_serial: AtomicU64,
}

/// A queued job: the parsed request plus the channel its response goes
/// back through to the connection thread.
struct Job {
    serial: u64,
    request: Request,
    reply: mpsc::Sender<Response>,
}

/// Bookkeeping for every connection handler thread the daemon spawns.
///
/// Invariant: a connection id lives in `streams` from accept until its
/// handler finishes (so `streams.len()` is the live-connection count
/// and the shutdown kick knows every socket), and in `handles` from
/// spawn until the handle is joined — either reaped from `finished`
/// while serving, or drained at shutdown. Nothing is ever detached.
#[derive(Default)]
struct RegistryInner {
    next_id: u64,
    streams: HashMap<u64, TcpStream>,
    handles: HashMap<u64, JoinHandle<()>>,
    finished: Vec<u64>,
    spawned: u64,
    joined: u64,
    panicked: u64,
}

#[derive(Default)]
struct ConnRegistry {
    inner: Mutex<RegistryInner>,
}

impl ConnRegistry {
    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a new connection's kick handle; returns its id.
    fn register(&self, stream: TcpStream) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.streams.insert(id, stream);
        id
    }

    /// Records the handler thread for a registered connection.
    fn attach(&self, id: u64, handle: JoinHandle<()>) {
        let mut inner = self.lock();
        inner.spawned += 1;
        inner.handles.insert(id, handle);
    }

    /// Called by a handler thread as its last act: the connection no
    /// longer needs a shutdown kick, and its handle is ready to reap.
    fn mark_finished(&self, id: u64) {
        let mut inner = self.lock();
        inner.streams.remove(&id);
        inner.finished.push(id);
    }

    fn live(&self) -> usize {
        self.lock().streams.len()
    }

    /// Joins the handlers of finished connections. Runs on the accept
    /// thread between accepts, so a long-lived daemon under connection
    /// churn holds O(live) handles, not O(ever-accepted).
    fn reap_finished(&self) {
        let ready: Vec<JoinHandle<()>> = {
            let mut inner = self.lock();
            let ids = std::mem::take(&mut inner.finished);
            ids.iter()
                .filter_map(|id| inner.handles.remove(id))
                .collect()
        };
        // Join outside the lock: these threads have already returned,
        // but a panicking unwind can still take a moment.
        for handle in ready {
            self.count_join(handle);
        }
    }

    /// Kicks every live connection so blocked reads/writes return.
    fn kick_all(&self) {
        let inner = self.lock();
        for stream in inner.streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Drains and joins every remaining handle (shutdown path).
    fn join_all(&self) {
        loop {
            let remaining: Vec<JoinHandle<()>> = {
                let mut inner = self.lock();
                inner.finished.clear();
                inner.handles.drain().map(|(_, handle)| handle).collect()
            };
            if remaining.is_empty() {
                return;
            }
            for handle in remaining {
                self.count_join(handle);
            }
        }
    }

    fn count_join(&self, handle: JoinHandle<()>) {
        let panicked = handle.join().is_err();
        let mut inner = self.lock();
        inner.joined += 1;
        if panicked {
            inner.panicked += 1;
        }
    }
}

struct Shared {
    config: ServiceConfig,
    queue: Admission<Job>,
    cache: ResultCache,
    counters: Counters,
    registry: ConnRegistry,
    shutdown: AtomicBool,
    shutdown_signal: (Mutex<bool>, Condvar),
}

impl Shared {
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            connections: self.counters.connections.load(Ordering::Relaxed),
            connections_shed: self.counters.connections_shed.load(Ordering::Relaxed),
            live_connections: self.registry.live() as u64,
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            deadline_cuts: self.counters.deadline_cuts.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            queue_depth: self.queue.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
            workers: self.config.workers as u64,
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        let (lock, cvar) = &self.shutdown_signal;
        if let Ok(mut flagged) = lock.lock() {
            *flagged = true;
        }
        cvar.notify_all();
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown_and_join`] (or let a client's `Shutdown` frame
/// trigger it) and then join via [`Server::wait`].
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker fleet and the accept loop, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when the listen address cannot be bound.
    pub fn start(config: ServiceConfig) -> Result<Server, ServiceError> {
        let listener = TcpListener::bind(&config.addr).map_err(ServiceError::Io)?;
        let local_addr = listener.local_addr().map_err(ServiceError::Io)?;
        let workers_n = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Admission::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            counters: Counters {
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                connections_shed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                deadline_cuts: AtomicU64::new(0),
                job_serial: AtomicU64::new(0),
            },
            registry: ConnRegistry::default(),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            config,
        });

        let mut workers = Vec::with_capacity(workers_n);
        for _ in 0..workers_n {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));

        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// Blocks until shutdown is requested (by a client's `Shutdown`
    /// frame or [`Server::shutdown_and_join`]), then joins the accept
    /// loop, every connection handler, and the drained worker fleet,
    /// returning the thread accounting.
    pub fn wait(mut self) -> ShutdownReport {
        {
            let (lock, cvar) = &self.shared.shutdown_signal;
            if let Ok(mut flagged) = lock.lock() {
                while !*flagged {
                    match cvar.wait(flagged) {
                        Ok(f) => flagged = f,
                        Err(_) => break,
                    }
                }
            }
        }
        self.join()
    }

    /// Requests shutdown and joins every thread: stops admission, wakes
    /// the accept loop, kicks live connections, drains queued jobs,
    /// then returns the thread accounting.
    pub fn shutdown_and_join(mut self) -> ShutdownReport {
        self.shared.request_shutdown();
        self.join()
    }

    fn join(&mut self) -> ShutdownReport {
        self.shared.request_shutdown();
        // The accept loop blocks in accept(); a throwaway self-connect
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Kick every live connection: blocked frame reads return
        // immediately instead of waiting out their deadlines.
        self.shared.registry.kick_all();
        // Workers first — handler threads blocked on a job reply need
        // the drained workers to answer before they can exit.
        let mut workers_joined = 0u64;
        for handle in self.workers.drain(..) {
            if handle.join().is_ok() {
                workers_joined += 1;
            }
        }
        self.shared.registry.join_all();
        let inner = self.shared.registry.lock();
        ShutdownReport {
            handlers_spawned: inner.spawned,
            handlers_joined: inner.joined,
            handlers_panicked: inner.panicked,
            workers_joined,
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        // Reap finished handlers between accepts so the handle map
        // stays proportional to live connections.
        shared.registry.reap_finished();
        let cap = shared.config.max_connections;
        let at_cap = cap != 0 && shared.registry.live() >= cap;
        let Ok(kick) = stream.try_clone() else {
            // Without a kick handle the thread could not be provably
            // joined at shutdown; refuse the connection instead.
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        };
        let id = shared.registry.register(kick);
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            if at_cap {
                shared_conn
                    .counters
                    .connections_shed
                    .fetch_add(1, Ordering::Relaxed);
                shed_connection(stream);
            } else {
                handle_connection(stream, &shared_conn);
            }
            shared_conn.registry.mark_finished(id);
        });
        shared.registry.attach(id, handle);
    }
}

/// Sheds a connection accepted beyond the concurrency cap: one typed
/// `Overloaded` frame, a brief drain so the peer's in-flight request
/// bytes don't turn the close into a RST before it reads our answer,
/// then close.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = write_frame(&mut stream, FrameKind::Overloaded, &[]);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut drain = [0u8; 1024];
    let _ = (&stream).read(&mut drain);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One client connection: frames in, responses out, strictly in order.
/// Runs until clean EOF, an idle read deadline, a wire-level fault
/// (answered with a `Reject` frame — then the stream is no longer
/// trustworthy and is closed), or daemon shutdown.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    loop {
        let frame = match read_frame_deadline(&stream, shared.config.read_timeout) {
            Ok(frame) => frame,
            Err(ProtocolError::Truncated { got: 0, .. }) => return, // clean close
            Err(ProtocolError::Deadline { got: 0, .. }) => return,  // idle past the deadline
            Err(e) => {
                // The frame failed at the wire level: nothing ran, so
                // the answer is a retry-safe Reject, not an Error. A
                // desynced or stalling stream is not worth trusting
                // for another frame.
                if matches!(e, ProtocolError::Deadline { .. }) {
                    shared
                        .counters
                        .deadline_cuts
                        .fetch_add(1, Ordering::Relaxed);
                }
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut stream, FrameKind::Reject, e.to_string().as_bytes());
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        if frame.kind != FrameKind::Request {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            let msg = format!("expected a request frame, got {:?}", frame.kind);
            let _ = write_frame(&mut stream, FrameKind::Reject, msg.as_bytes());
            return;
        }
        let request = match Request::from_bytes(&frame.payload) {
            Ok(request) => request,
            Err(e) => {
                // Framing (and checksum) were intact; only this payload
                // was bad. Reject it and keep the connection.
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut stream, FrameKind::Reject, e.to_string().as_bytes());
                continue;
            }
        };
        let response = match request {
            // Control-plane requests answer inline: they must work even
            // when the queue is saturated.
            Request::Stats => match serde_json::to_string_pretty(&shared.stats()) {
                Ok(mut json) => {
                    json.push('\n');
                    Response::Ok(json.into_bytes())
                }
                Err(e) => Response::Error(format!("serializing stats: {e}")),
            },
            Request::Shutdown => {
                let _ = write_frame(&mut stream, FrameKind::Ok, &[]);
                shared.request_shutdown();
                return;
            }
            job_request => submit_and_wait(job_request, shared),
        };
        let (kind, payload) = response.to_frame();
        if write_frame(&mut stream, kind, payload).is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Admission: try the bounded queue, shed with `Overloaded` when full,
/// otherwise block this connection thread until a worker answers.
fn submit_and_wait(request: Request, shared: &Arc<Shared>) -> Response {
    let (reply_tx, reply_rx) = mpsc::channel();
    let serial = shared.counters.job_serial.fetch_add(1, Ordering::Relaxed);
    let job = Job {
        serial,
        request,
        reply: reply_tx,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(AdmissionError::Full(_)) => {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Response::Overloaded;
        }
        Err(AdmissionError::Closed(_)) => {
            return Response::Error("daemon is shutting down".into());
        }
    }
    match reply_rx.recv() {
        Ok(response) => response,
        Err(_) => Response::Error("worker dropped the job".into()),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let response = execute_supervised(job.serial, job.request, shared);
        match response {
            Response::Ok(_) => shared.counters.completed.fetch_add(1, Ordering::Relaxed),
            _ => shared.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        let _ = job.reply.send(response);
    }
}

/// Runs one job under the campaign supervisor: panics are caught, hung
/// attempts watchdogged, transient failures retried deterministically.
fn execute_supervised(serial: u64, request: Request, shared: &Arc<Shared>) -> Response {
    let options = SupervisorOptions {
        threads: 1,
        progress: false,
        max_retries: shared.config.max_retries,
        timeout: shared.config.timeout,
        cycle_budget: None,
        backoff_base_ms: 10,
        stop_after: None,
    };
    let handler_shared = Arc::clone(shared);
    let report = supervise_once(
        serial,
        &options,
        Arc::new(move |_ctx: &sentomist_core::supervise::RunContext| {
            handle_request(&request, &handler_shared)
        }),
    );
    match (report.outcome, report.error) {
        (Some(bytes), _) => Response::Ok(bytes),
        (None, Some(error)) => Response::Error(format!("[{:?}] {}", error.kind, error.message)),
        (None, None) => Response::Error("job produced neither result nor error".into()),
    }
}

/// The job handlers. Semantic failures are `Fatal` (a retry cannot fix
/// a bad store path or an unknown app); only genuinely transient
/// conditions surface as `Transient`.
fn handle_request(request: &Request, shared: &Arc<Shared>) -> Result<Vec<u8>, RunFailure> {
    let fatal = |m: String| RunFailure::Fatal(m);
    match request {
        Request::Ping => Ok(b"pong\n".to_vec()),
        Request::Sleep { ms } => {
            // The deterministic load unit: hold the worker, bounded so a
            // hostile client cannot park a worker for hours.
            std::thread::sleep(Duration::from_millis((*ms).min(60_000)));
            Ok(b"slept\n".to_vec())
        }
        Request::Panic => panic!("requested panic (supervision test aid)"),
        Request::Emulate {
            case,
            period,
            seconds,
            nu,
            seed,
        } => {
            let case = if case.is_empty() {
                None
            } else {
                Some(case.as_str())
            };
            let mode = Mode::resolve(case, *period, *seconds, *nu).map_err(|e| fatal(e.0))?;
            let job = mode.job().map_err(|e| fatal(e.0))?;
            let outcome = job(*seed).map_err(RunFailure::Transient)?;
            render_json(&outcome)
        }
        Request::Mine { store, quarantine } => mine_with_cache(store, *quarantine, shared),
        Request::Lint { app, fixed } => {
            let program = bundled_program(app, *fixed).map_err(|e| fatal(e.0))?;
            let report = staticlint::lint(&program);
            render_json(&report)
        }
        Request::Slice { app, fixed, pcs } => {
            // pcs travel as u64 for JSON friendliness; out-of-range
            // values become a typed slice error downstream, not a wrap.
            let pcs: Vec<u16> = pcs
                .iter()
                .map(|&pc| {
                    u16::try_from(pc).map_err(|_| fatal(format!("slice pc {pc} exceeds u16")))
                })
                .collect::<Result<_, _>>()?;
            let document =
                sentomist_apps::slice_document(app, *fixed, &pcs).map_err(|e| fatal(e.0))?;
            Ok(document.into_bytes())
        }
        Request::Hunt {
            case,
            fixed,
            seed,
            top_k,
        } => {
            let case = HuntCase::from_number(*case)
                .ok_or_else(|| fatal(format!("hunt case wants 1, 2 or 3, got {case}")))?;
            let variant = if *fixed {
                Variant::Fixed
            } else {
                Variant::Buggy
            };
            let policy = InvariantPolicy {
                top_k: (*top_k).max(1) as usize,
            };
            let (record, _traces) = sentomist_apps::hunt_iteration(case, variant, *seed, &policy)
                .map_err(RunFailure::Transient)?;
            render_json(&record)
        }
        // Handled inline by the connection thread; reaching a worker is
        // a logic error worth a typed answer rather than a panic.
        Request::Stats | Request::Shutdown => {
            Err(fatal("control-plane request routed to a worker".into()))
        }
    }
}

/// The read-through mine path: fingerprint the store, consult the
/// cache, fall through to [`mine_corpus`], and cache the document iff
/// the store's fingerprint did not move while mining.
fn mine_with_cache(
    store_path: &str,
    quarantine: bool,
    shared: &Arc<Shared>,
) -> Result<Vec<u8>, RunFailure> {
    let fatal = |m: String| RunFailure::Fatal(m);
    let path = Path::new(store_path);
    let store = TraceStore::open(path).map_err(|e| fatal(e.to_string()))?;
    let key = CacheKey::new(path, quarantine);
    let fingerprint = store.fingerprint().map_err(|e| fatal(e.to_string()))?;
    if let Some(current) = fingerprint {
        if let Some(document) = shared.cache.lookup(&key, current) {
            return Ok(document.as_ref().clone());
        }
    }
    let mined = mine_corpus(
        &store,
        &CorpusMineOptions {
            threads: shared.config.mine_threads.max(1),
            progress: false,
            quarantine,
        },
    )
    .map_err(|e| fatal(e.0))?;
    let document = mined.document.into_bytes();
    if document.len() <= MAX_PAYLOAD as usize {
        // Cache only when the corpus is provably the one we mined: the
        // fingerprint must exist and must not have moved underneath us.
        if let (Some(before), Ok(Some(after))) = (fingerprint, store.fingerprint()) {
            if before == after {
                shared.cache.insert(key, after, Arc::new(document.clone()));
            }
        }
    }
    Ok(document)
}

/// Pretty JSON plus the trailing newline every CLI `--json` path prints.
fn render_json<T: Serialize>(value: &T) -> Result<Vec<u8>, RunFailure> {
    serde_json::to_string_pretty(value)
        .map(|mut s| {
            s.push('\n');
            s.into_bytes()
        })
        .map_err(|e| RunFailure::Fatal(format!("serializing response: {e}")))
}
