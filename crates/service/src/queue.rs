//! The bounded admission queue.
//!
//! Admission is the backpressure point of the daemon: a connection
//! thread *tries* to enqueue each parsed request and, when the queue is
//! at capacity, the job is **shed immediately** with a typed
//! [`Overloaded`](crate::protocol::Response::Overloaded) response —
//! never buffered unboundedly, never silently dropped. Workers block on
//! [`Admission::pop`] and drain in FIFO order; closing the queue wakes
//! every blocked worker and lets the fleet exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Admission::try_push`] refused a job. Both variants hand the job
/// back so the caller can answer the client without cloning.
#[derive(Debug)]
pub enum AdmissionError<T> {
    /// The queue is at capacity — shed the job (backpressure).
    Full(T),
    /// The queue is closed — the daemon is shutting down.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO with non-blocking
/// admission and blocking removal.
pub struct Admission<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Admission<T> {
    /// A queue admitting at most `capacity` queued jobs (minimum 1).
    pub fn new(capacity: usize) -> Admission<T> {
        Admission {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().map(|s| s.items.len()).unwrap_or(0)
    }

    /// Whether the queue is currently empty (for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues the job or refuses it with a
    /// typed reason, returning the job itself either way.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Full`] at capacity (the backpressure signal),
    /// [`AdmissionError::Closed`] during shutdown.
    pub fn try_push(&self, item: T) -> Result<(), AdmissionError<T>> {
        let mut state = match self.state.lock() {
            Ok(s) => s,
            // A poisoned queue behaves as closed: nothing gets lost
            // silently, the caller answers the client.
            Err(_) => return Err(AdmissionError::Closed(item)),
        };
        if state.closed {
            return Err(AdmissionError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(AdmissionError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (FIFO) or the queue is closed
    /// *and* drained, which returns `None` — the worker's exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).ok()?;
        }
    }

    /// Closes the queue: admission starts refusing with `Closed`, and
    /// workers drain the backlog then see `None`.
    pub fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_hands_the_job_back() {
        let q = Admission::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(AdmissionError::Full(job)) => assert_eq!(job, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = Arc::new(Admission::new(4));
        q.try_push(10).unwrap();
        q.close();
        match q.try_push(11) {
            Err(AdmissionError::Closed(job)) => assert_eq!(job, 11),
            other => panic!("expected Closed, got {other:?}"),
        }
        // The backlog still drains after close…
        assert_eq!(q.pop(), Some(10));
        // …and then pop returns None instead of blocking.
        assert_eq!(q.pop(), None);

        // A worker blocked on an empty queue is woken by close.
        let q2 = Arc::new(Admission::<u64>::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn fifo_across_many_jobs() {
        let q = Admission::new(64);
        for i in 0..64 {
            q.try_push(i).unwrap();
        }
        for i in 0..64 {
            assert_eq!(q.pop(), Some(i));
        }
    }
}
