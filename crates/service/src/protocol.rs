//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! A frame is a fixed 10-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic `b"SNTM"`
//! 4       1     protocol version (currently 1)
//! 5       1     frame kind (request / ok / error / overloaded)
//! 6       4     payload length, u32 little-endian
//! 10      len   payload bytes
//! ```
//!
//! The length field is validated against [`MAX_PAYLOAD`] **before** any
//! allocation happens, so a hostile or corrupt header can never make the
//! daemon reserve gigabytes. Every malformed input — wrong magic, unknown
//! version or kind, oversized length, short read — decodes to a typed
//! [`ProtocolError`]; the decoder has no panicking path (the protocol
//! hardening proptest feeds it arbitrary and truncated byte strings).
//!
//! Request payloads are JSON ([`Request`]); an `Ok` response payload is
//! the handler's **raw result bytes** — deliberately not re-wrapped in
//! JSON, so a mine response can be byte-identical to what `sentomist
//! trace mine --json` prints.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SNTM";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 10;
/// Hard cap on a frame's payload length, enforced before allocation.
pub const MAX_PAYLOAD: u32 = 8 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a JSON-encoded [`Request`].
    Request,
    /// Server → client: success; payload is the handler's raw result bytes.
    Ok,
    /// Server → client: the job failed; payload is the UTF-8 error message.
    Error,
    /// Server → client: admission queue full, job shed. Payload empty.
    Overloaded,
}

impl FrameKind {
    /// Wire byte for this kind.
    pub fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Ok => 2,
            FrameKind::Error => 3,
            FrameKind::Overloaded => 4,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadKind`] for any unassigned byte.
    pub fn from_byte(b: u8) -> Result<FrameKind, ProtocolError> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Ok),
            3 => Ok(FrameKind::Error),
            4 => Ok(FrameKind::Overloaded),
            other => Err(ProtocolError::BadKind(other)),
        }
    }
}

/// Every way a frame can fail to parse or transfer. Typed, non-panicking,
/// and allocation-safe: `Oversized` is raised from the header alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown frame-kind byte.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The length the header declared.
        declared: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The input ended before the declared frame did.
    Truncated {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// An I/O error while reading or writing a frame.
    Io(String),
    /// The payload failed to decode (bad UTF-8 or bad request JSON).
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Oversized { declared, max } => {
                write!(f, "declared payload {declared} bytes exceeds cap {max}")
            }
            ProtocolError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            ProtocolError::Io(e) => write!(f, "frame i/o: {e}"),
            ProtocolError::Malformed(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes a frame.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] when the payload exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(ProtocolError::Oversized {
            declared: payload.len().min(u32::MAX as usize) as u32,
            max: MAX_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validates a 10-byte header, returning the frame kind and the declared
/// payload length. The length is checked against [`MAX_PAYLOAD`] here —
/// before any caller allocates for the payload.
///
/// # Errors
///
/// [`ProtocolError::BadMagic`] / [`BadVersion`](ProtocolError::BadVersion)
/// / [`BadKind`](ProtocolError::BadKind) /
/// [`Oversized`](ProtocolError::Oversized).
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(FrameKind, u32), ProtocolError> {
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(ProtocolError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5])?;
    let declared = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if declared > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized {
            declared,
            max: MAX_PAYLOAD,
        });
    }
    Ok((kind, declared))
}

/// Decodes one frame from the front of `bytes`, returning the frame and
/// the number of bytes consumed. Never panics and never allocates more
/// than the (capped) declared payload length.
///
/// # Errors
///
/// Any [`ProtocolError`]; short input is
/// [`Truncated`](ProtocolError::Truncated).
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), ProtocolError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (kind, declared) = parse_header(&header)?;
    let total = HEADER_LEN + declared as usize;
    if bytes.len() < total {
        return Err(ProtocolError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    Ok((
        Frame {
            kind,
            payload: bytes[HEADER_LEN..total].to_vec(),
        },
        total,
    ))
}

/// Reads exactly one frame from `r`.
///
/// # Errors
///
/// Any [`ProtocolError`]; a stream that ends mid-frame is
/// [`Truncated`](ProtocolError::Truncated), other I/O failures are
/// [`Io`](ProtocolError::Io).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, 0)?;
    let (kind, declared) = parse_header(&header)?;
    let mut payload = vec![0u8; declared as usize];
    read_exact_or(r, &mut payload, HEADER_LEN)?;
    Ok(Frame { kind, payload })
}

/// `read_exact` with typed errors: a clean EOF mid-frame maps to
/// [`ProtocolError::Truncated`] (with `already` bytes consumed so far),
/// anything else to [`ProtocolError::Io`].
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], already: usize) -> Result<(), ProtocolError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    needed: already + buf.len(),
                    got: already + filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Writes one frame to `w`.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] / [`Io`](ProtocolError::Io).
pub fn write_frame<W: Write>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), ProtocolError> {
    let bytes = encode_frame(kind, payload)?;
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| ProtocolError::Io(e.to_string()))
}

/// A job request, JSON-encoded in a [`FrameKind::Request`] payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Round-trip liveness probe; goes through the full admission queue
    /// and worker pool, so its latency is the service's floor.
    Ping,
    /// Occupy a worker for `ms` milliseconds — the deterministic load
    /// unit the load generator and backpressure tests ramp with.
    Sleep {
        /// Milliseconds to hold the worker.
        ms: u64,
    },
    /// Deliberately panic inside the handler — proves the supervised
    /// worker fleet isolates a poisoned job (test aid).
    Panic,
    /// Emulate-and-mine one seed of a campaign mode, as `sentomist
    /// campaign` would; the response is the run outcome as pretty JSON.
    Emulate {
        /// Case selector (`"1"|"2"|"3"`), empty for trigger mode.
        #[serde(default)]
        case: String,
        /// Trigger-mode ADC period (ms).
        period: u32,
        /// Trigger-mode emulated seconds.
        seconds: u64,
        /// Trigger-mode one-class SVM ν.
        nu: f64,
        /// The seed.
        seed: u64,
    },
    /// Re-mine a recorded corpus into its campaign document; the `Ok`
    /// payload is **exactly** the bytes `sentomist trace mine --json`
    /// prints for the same store.
    Mine {
        /// Path of the trace store on the daemon's filesystem.
        store: String,
        /// Quarantine-and-continue over corrupt runs.
        quarantine: bool,
    },
    /// Run the static interleaving linter over a bundled case-study
    /// program; response is the report as pretty JSON.
    Lint {
        /// Bundled app name (`oscilloscope|forwarder|ctp`).
        app: String,
        /// Lint the fixed variant instead of the buggy one.
        fixed: bool,
    },
    /// Backward dependence slice over a bundled case-study program;
    /// the `Ok` payload is **exactly** the bytes `sentomist slice --app
    /// <name> --json` prints for the same inputs.
    Slice {
        /// Bundled app name (`oscilloscope|forwarder|ctp`).
        app: String,
        /// Slice the fixed variant instead of the buggy one.
        fixed: bool,
        /// Seed pcs; empty defaults to the lint warnings' flagged pcs.
        #[serde(default)]
        pcs: Vec<u64>,
    },
    /// One seeded hunt iteration; response is the iteration record as
    /// pretty JSON.
    Hunt {
        /// Case number (1, 2 or 3).
        case: u64,
        /// Hunt the fixed variant.
        fixed: bool,
        /// The scenario seed.
        seed: u64,
        /// Invariant policy: top-k localization window.
        top_k: u64,
    },
    /// Service counters (answered inline, never queued); response is
    /// [`StatsSnapshot`] JSON.
    Stats,
    /// Graceful shutdown: the daemon acknowledges with an empty `Ok`,
    /// stops accepting, drains workers, and exits 0.
    Shutdown,
}

impl Request {
    /// JSON payload bytes for this request.
    ///
    /// # Errors
    ///
    /// Serialization failure (practically unreachable).
    pub fn to_bytes(&self) -> Result<Vec<u8>, ProtocolError> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .map_err(|e| ProtocolError::Malformed(e.to_string()))
    }

    /// Parses a request from a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on bad UTF-8 or bad JSON.
    pub fn from_bytes(payload: &[u8]) -> Result<Request, ProtocolError> {
        let text =
            std::str::from_utf8(payload).map_err(|e| ProtocolError::Malformed(e.to_string()))?;
        serde_json::from_str(text).map_err(|e| ProtocolError::Malformed(e.to_string()))
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the handler's raw result bytes.
    Ok(Vec<u8>),
    /// The job failed; the error message.
    Error(String),
    /// The admission queue was full and the job was shed.
    Overloaded,
}

impl Response {
    /// The frame kind and payload bytes this response serializes to.
    pub fn to_frame(&self) -> (FrameKind, &[u8]) {
        match self {
            Response::Ok(bytes) => (FrameKind::Ok, bytes.as_slice()),
            Response::Error(msg) => (FrameKind::Error, msg.as_bytes()),
            Response::Overloaded => (FrameKind::Overloaded, &[]),
        }
    }

    /// Reassembles a response from a received frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] when a request frame arrives where a
    /// response belongs, or an error payload is not UTF-8.
    pub fn from_frame(frame: Frame) -> Result<Response, ProtocolError> {
        match frame.kind {
            FrameKind::Ok => Ok(Response::Ok(frame.payload)),
            FrameKind::Error => String::from_utf8(frame.payload)
                .map(Response::Error)
                .map_err(|e| ProtocolError::Malformed(e.to_string())),
            FrameKind::Overloaded => Ok(Response::Overloaded),
            FrameKind::Request => Err(ProtocolError::Malformed(
                "request frame in response position".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for (kind, payload) in [
            (FrameKind::Request, b"hello".to_vec()),
            (FrameKind::Ok, Vec::new()),
            (FrameKind::Error, vec![0u8; 1000]),
            (FrameKind::Overloaded, Vec::new()),
        ] {
            let bytes = encode_frame(kind, &payload).unwrap();
            let (frame, consumed) = decode_frame(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
            let mut cursor = std::io::Cursor::new(bytes);
            let frame = read_frame(&mut cursor).unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone() {
        let mut bytes = encode_frame(FrameKind::Request, b"x").unwrap();
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&bytes) {
            Err(ProtocolError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The streaming reader rejects it too, before allocating.
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let bytes = encode_frame(FrameKind::Request, b"abcdef").unwrap();
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(ProtocolError::Truncated { .. })
            ));
        }
        assert!(matches!(
            decode_frame(b"XXXXXXXXXXXXXXXX"),
            Err(ProtocolError::BadMagic(_))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(matches!(
            decode_frame(&wrong_version),
            Err(ProtocolError::BadVersion(9))
        ));
        let mut wrong_kind = bytes;
        wrong_kind[5] = 200;
        assert!(matches!(
            decode_frame(&wrong_kind),
            Err(ProtocolError::BadKind(200))
        ));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::Ping,
            Request::Sleep { ms: 25 },
            Request::Panic,
            Request::Emulate {
                case: String::new(),
                period: 20,
                seconds: 2,
                nu: 0.05,
                seed: 7,
            },
            Request::Mine {
                store: "/tmp/corpus".into(),
                quarantine: true,
            },
            Request::Lint {
                app: "forwarder".into(),
                fixed: false,
            },
            Request::Slice {
                app: "oscilloscope".into(),
                fixed: true,
                pcs: vec![3, 9],
            },
            Request::Hunt {
                case: 2,
                fixed: false,
                seed: 41,
                top_k: 3,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in requests {
            let bytes = request.to_bytes().unwrap();
            assert_eq!(Request::from_bytes(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        for response in [
            Response::Ok(b"payload".to_vec()),
            Response::Error("boom".into()),
            Response::Overloaded,
        ] {
            let (kind, payload) = response.to_frame();
            let bytes = encode_frame(kind, payload).unwrap();
            let (frame, _) = decode_frame(&bytes).unwrap();
            assert_eq!(Response::from_frame(frame).unwrap(), response);
        }
    }
}
