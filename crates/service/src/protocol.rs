//! The wire protocol: length-prefixed, checksummed binary frames over
//! TCP.
//!
//! A frame is a fixed 14-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic `b"SNTM"`
//! 4       1     protocol version (currently 2)
//! 5       1     frame kind (request / ok / error / overloaded / reject)
//! 6       4     payload length, u32 little-endian
//! 10      4     FNV-1a-32 checksum of the payload, u32 little-endian
//! 14      len   payload bytes
//! ```
//!
//! The length field is validated against [`MAX_PAYLOAD`] **before** any
//! allocation happens, so a hostile or corrupt header can never make the
//! daemon reserve gigabytes. Every malformed input — wrong magic, unknown
//! version or kind, oversized length, short read, checksum mismatch —
//! decodes to a typed [`ProtocolError`]; the decoder has no panicking
//! path (the protocol hardening proptest feeds it arbitrary and
//! truncated byte strings).
//!
//! Version 2 hardens the wire against a *faulty network*, not just a
//! hostile client:
//!
//! * the payload checksum catches single-byte (and most multi-byte)
//!   corruption in flight — load-bearing, because `Ok` payloads carry
//!   raw result bytes with no inner framing, so an undetected flipped
//!   byte would silently break the daemon's byte-identity contract with
//!   offline `trace mine --json`;
//! * [`FrameKind::Reject`] answers wire-level failures (unparseable
//!   frame, checksum mismatch, deadline expiry mid-frame). A `Reject`
//!   means **the request never reached a handler** — distinct from
//!   `Error` ("your job ran and failed") and `Overloaded` ("shed at
//!   admission") — which is exactly the signal a retrying client needs;
//! * a read or write deadline expiring mid-frame surfaces as
//!   [`ProtocolError::Deadline`], distinct from a peer actually closing
//!   the stream ([`Truncated`](ProtocolError::Truncated)).
//!
//! Request payloads are JSON ([`Request`]); an `Ok` response payload is
//! the handler's **raw result bytes** — deliberately not re-wrapped in
//! JSON, so a mine response can be byte-identical to what `sentomist
//! trace mine --json` prints.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SNTM";
/// Protocol version this build speaks (2 added the payload checksum and
/// the `Reject` frame kind).
pub const VERSION: u8 = 2;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 14;
/// Hard cap on a frame's payload length, enforced before allocation.
pub const MAX_PAYLOAD: u32 = 8 * 1024 * 1024;

/// FNV-1a-32 over the payload bytes — the checksum carried in every
/// frame header. Cheap, allocation-free, and strong enough to catch the
/// single-byte wire corruption the chaos proxy injects (and real links
/// produce).
pub fn payload_checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in payload {
        h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    }
    h
}

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a JSON-encoded [`Request`].
    Request,
    /// Server → client: success; payload is the handler's raw result bytes.
    Ok,
    /// Server → client: the job failed; payload is the UTF-8 error message.
    Error,
    /// Server → client: admission queue (or connection cap) full, job
    /// shed. Payload empty.
    Overloaded,
    /// Server → client: the request never reached a handler — the frame
    /// was unparseable, failed its checksum, or a read deadline expired
    /// mid-frame. Payload is the UTF-8 reason. Safe to retry by
    /// construction: nothing ran.
    Reject,
}

impl FrameKind {
    /// Wire byte for this kind.
    pub fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Ok => 2,
            FrameKind::Error => 3,
            FrameKind::Overloaded => 4,
            FrameKind::Reject => 5,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadKind`] for any unassigned byte.
    pub fn from_byte(b: u8) -> Result<FrameKind, ProtocolError> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Ok),
            3 => Ok(FrameKind::Error),
            4 => Ok(FrameKind::Overloaded),
            5 => Ok(FrameKind::Reject),
            other => Err(ProtocolError::BadKind(other)),
        }
    }
}

/// Every way a frame can fail to parse or transfer. Typed, non-panicking,
/// and allocation-safe: `Oversized` is raised from the header alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown frame-kind byte.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The length the header declared.
        declared: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The input ended before the declared frame did.
    Truncated {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The payload did not hash to the checksum the header declared —
    /// the bytes were corrupted in flight.
    Checksum {
        /// The checksum the header declared.
        declared: u32,
        /// The checksum the received payload actually hashes to.
        actual: u32,
    },
    /// A read or write deadline expired mid-frame (slow-loris peer,
    /// stalled link). Distinct from [`Truncated`](ProtocolError::Truncated):
    /// the stream is still open, it just stopped making progress.
    Deadline {
        /// Bytes the frame still needed when the deadline fired.
        needed: usize,
        /// Bytes actually transferred by then.
        got: usize,
    },
    /// An I/O error while reading or writing a frame.
    Io(String),
    /// The payload failed to decode (bad UTF-8 or bad request JSON).
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Oversized { declared, max } => {
                write!(f, "declared payload {declared} bytes exceeds cap {max}")
            }
            ProtocolError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            ProtocolError::Checksum { declared, actual } => write!(
                f,
                "payload checksum mismatch: header declared {declared:08x}, payload hashes to {actual:08x}"
            ),
            ProtocolError::Deadline { needed, got } => write!(
                f,
                "deadline expired mid-frame: needed {needed} bytes, got {got}"
            ),
            ProtocolError::Io(e) => write!(f, "frame i/o: {e}"),
            ProtocolError::Malformed(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Whether an I/O error kind means a socket deadline fired (Linux
/// reports `SO_RCVTIMEO`/`SO_SNDTIMEO` expiry as `WouldBlock`, other
/// platforms as `TimedOut`).
fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes a frame, stamping the payload checksum into the header.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] when the payload exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(ProtocolError::Oversized {
            declared: payload.len().min(u32::MAX as usize) as u32,
            max: MAX_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validates a 14-byte header, returning the frame kind, the declared
/// payload length and the declared payload checksum. The length is
/// checked against [`MAX_PAYLOAD`] here — before any caller allocates
/// for the payload.
///
/// # Errors
///
/// [`ProtocolError::BadMagic`] / [`BadVersion`](ProtocolError::BadVersion)
/// / [`BadKind`](ProtocolError::BadKind) /
/// [`Oversized`](ProtocolError::Oversized).
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(FrameKind, u32, u32), ProtocolError> {
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(ProtocolError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5])?;
    let declared = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if declared > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized {
            declared,
            max: MAX_PAYLOAD,
        });
    }
    let checksum = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    Ok((kind, declared, checksum))
}

/// Decodes one frame from the front of `bytes`, returning the frame and
/// the number of bytes consumed. Never panics and never allocates more
/// than the (capped) declared payload length; the payload checksum is
/// verified before the frame is returned.
///
/// # Errors
///
/// Any [`ProtocolError`]; short input is
/// [`Truncated`](ProtocolError::Truncated), in-flight corruption is
/// [`Checksum`](ProtocolError::Checksum).
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), ProtocolError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (kind, declared, checksum) = parse_header(&header)?;
    let total = HEADER_LEN + declared as usize;
    if bytes.len() < total {
        return Err(ProtocolError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_LEN..total];
    let actual = payload_checksum(payload);
    if actual != checksum {
        return Err(ProtocolError::Checksum {
            declared: checksum,
            actual,
        });
    }
    Ok((
        Frame {
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Reads exactly one frame from `r`, verifying its checksum.
///
/// # Errors
///
/// Any [`ProtocolError`]; a stream that ends mid-frame is
/// [`Truncated`](ProtocolError::Truncated), a socket deadline firing
/// mid-frame is [`Deadline`](ProtocolError::Deadline), other I/O
/// failures are [`Io`](ProtocolError::Io).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, 0)?;
    let (kind, declared, checksum) = parse_header(&header)?;
    let mut payload = vec![0u8; declared as usize];
    read_exact_or(r, &mut payload, HEADER_LEN)?;
    let actual = payload_checksum(&payload);
    if actual != checksum {
        return Err(ProtocolError::Checksum {
            declared: checksum,
            actual,
        });
    }
    Ok(Frame { kind, payload })
}

/// `read_exact` with typed errors: a clean EOF mid-frame maps to
/// [`ProtocolError::Truncated`], a socket deadline firing to
/// [`ProtocolError::Deadline`] (with `already` bytes consumed so far),
/// anything else to [`ProtocolError::Io`].
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], already: usize) -> Result<(), ProtocolError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    needed: already + buf.len(),
                    got: already + filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                return Err(ProtocolError::Deadline {
                    needed: already + buf.len(),
                    got: already + filled,
                })
            }
            Err(e) => return Err(ProtocolError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Writes one frame to `w`.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] / [`Deadline`](ProtocolError::Deadline)
/// when a write deadline fires / [`Io`](ProtocolError::Io).
pub fn write_frame<W: Write>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), ProtocolError> {
    let bytes = encode_frame(kind, payload)?;
    w.write_all(&bytes).and_then(|()| w.flush()).map_err(|e| {
        if is_timeout(e.kind()) {
            ProtocolError::Deadline {
                needed: bytes.len(),
                got: 0,
            }
        } else {
            ProtocolError::Io(e.to_string())
        }
    })
}

/// A [`Read`] adapter that enforces one **overall** deadline across
/// however many reads a frame takes.
///
/// `set_read_timeout` alone cannot do this: it bounds each *call*, so
/// a slow-loris peer dripping one byte per interval resets the clock
/// forever. This wrapper re-arms the socket timeout with the
/// *remaining* budget before every read, so the total wait is bounded
/// no matter how the bytes are chopped.
struct DeadlineReader<'a> {
    stream: &'a std::net::TcpStream,
    deadline: std::time::Instant,
    /// When the socket timeout was last armed, if ever. Re-arming is a
    /// syscall per read; skipping it while the armed value is less than
    /// [`ARM_SLACK`] stale keeps the fast path at one arm per frame and
    /// loosens the deadline by at most that slack.
    armed_at: Option<std::time::Instant>,
}

/// How stale an armed per-call timeout may get before a read re-arms
/// it with the true remaining budget.
const ARM_SLACK: std::time::Duration = std::time::Duration::from_millis(5);

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let now = std::time::Instant::now();
        let remaining = self.deadline.saturating_duration_since(now);
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "frame deadline expired",
            ));
        }
        let stale = self
            .armed_at
            .is_none_or(|at| now.saturating_duration_since(at) >= ARM_SLACK);
        if stale {
            self.stream.set_read_timeout(Some(remaining))?;
            self.armed_at = Some(now);
        }
        (&mut &*self.stream).read(buf)
    }
}

/// Reads one frame from a socket under an overall per-frame deadline
/// (`None` = block forever). A peer that stalls — or drips bytes too
/// slowly — past the budget yields [`ProtocolError::Deadline`]; a
/// `Deadline` with `got: 0` means the peer sent nothing at all (an
/// idle connection), which callers may treat as a quiet close rather
/// than a fault.
///
/// # Errors
///
/// Any [`ProtocolError`], as [`read_frame`].
pub fn read_frame_deadline(
    stream: &std::net::TcpStream,
    timeout: Option<std::time::Duration>,
) -> Result<Frame, ProtocolError> {
    match timeout {
        None => read_frame(&mut &*stream),
        Some(timeout) => {
            let mut reader = DeadlineReader {
                stream,
                deadline: std::time::Instant::now() + timeout,
                armed_at: None,
            };
            // The socket's read timeout is deliberately left armed on
            // return: every reader in this crate goes through this
            // function and re-arms on its first read, and disarming
            // would cost a syscall per frame on the clean path.
            read_frame(&mut reader)
        }
    }
}

/// A job request, JSON-encoded in a [`FrameKind::Request`] payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Round-trip liveness probe; goes through the full admission queue
    /// and worker pool, so its latency is the service's floor.
    Ping,
    /// Occupy a worker for `ms` milliseconds — the deterministic load
    /// unit the load generator and backpressure tests ramp with.
    Sleep {
        /// Milliseconds to hold the worker.
        ms: u64,
    },
    /// Deliberately panic inside the handler — proves the supervised
    /// worker fleet isolates a poisoned job (test aid).
    Panic,
    /// Emulate-and-mine one seed of a campaign mode, as `sentomist
    /// campaign` would; the response is the run outcome as pretty JSON.
    Emulate {
        /// Case selector (`"1"|"2"|"3"`), empty for trigger mode.
        #[serde(default)]
        case: String,
        /// Trigger-mode ADC period (ms).
        period: u32,
        /// Trigger-mode emulated seconds.
        seconds: u64,
        /// Trigger-mode one-class SVM ν.
        nu: f64,
        /// The seed.
        seed: u64,
    },
    /// Re-mine a recorded corpus into its campaign document; the `Ok`
    /// payload is **exactly** the bytes `sentomist trace mine --json`
    /// prints for the same store.
    Mine {
        /// Path of the trace store on the daemon's filesystem.
        store: String,
        /// Quarantine-and-continue over corrupt runs.
        quarantine: bool,
    },
    /// Run the static interleaving linter over a bundled case-study
    /// program; response is the report as pretty JSON.
    Lint {
        /// Bundled app name (`oscilloscope|forwarder|ctp`).
        app: String,
        /// Lint the fixed variant instead of the buggy one.
        fixed: bool,
    },
    /// Backward dependence slice over a bundled case-study program;
    /// the `Ok` payload is **exactly** the bytes `sentomist slice --app
    /// <name> --json` prints for the same inputs.
    Slice {
        /// Bundled app name (`oscilloscope|forwarder|ctp`).
        app: String,
        /// Slice the fixed variant instead of the buggy one.
        fixed: bool,
        /// Seed pcs; empty defaults to the lint warnings' flagged pcs.
        #[serde(default)]
        pcs: Vec<u64>,
    },
    /// One seeded hunt iteration; response is the iteration record as
    /// pretty JSON.
    Hunt {
        /// Case number (1, 2 or 3).
        case: u64,
        /// Hunt the fixed variant.
        fixed: bool,
        /// The scenario seed.
        seed: u64,
        /// Invariant policy: top-k localization window.
        top_k: u64,
    },
    /// Service counters (answered inline, never queued); response is
    /// [`StatsSnapshot`](crate::server::StatsSnapshot) JSON.
    Stats,
    /// Graceful shutdown: the daemon acknowledges with an empty `Ok`,
    /// stops accepting, drains workers, and exits 0.
    Shutdown,
}

impl Request {
    /// Whether a retry of this request is safe after an ambiguous wire
    /// failure (the response may have been lost *after* the job ran).
    ///
    /// `Mine`, `Lint`, `Slice` and `Stats` are pure reads — `Mine`
    /// against a generation-stamped corpus whose fingerprint, not wall
    /// clock, keys the result — and `Ping` carries no work at all, so
    /// running any of them twice observably equals running it once.
    /// `Sleep` and `Panic` consume worker capacity, `Emulate` and
    /// `Hunt` re-run heavy compute, and `Shutdown` is a state change
    /// that must never be replayed; none of those are retried.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Mine { .. }
                | Request::Lint { .. }
                | Request::Slice { .. }
                | Request::Stats
        )
    }

    /// JSON payload bytes for this request.
    ///
    /// # Errors
    ///
    /// Serialization failure (practically unreachable).
    pub fn to_bytes(&self) -> Result<Vec<u8>, ProtocolError> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .map_err(|e| ProtocolError::Malformed(e.to_string()))
    }

    /// Parses a request from a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on bad UTF-8 or bad JSON.
    pub fn from_bytes(payload: &[u8]) -> Result<Request, ProtocolError> {
        let text =
            std::str::from_utf8(payload).map_err(|e| ProtocolError::Malformed(e.to_string()))?;
        serde_json::from_str(text).map_err(|e| ProtocolError::Malformed(e.to_string()))
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the handler's raw result bytes.
    Ok(Vec<u8>),
    /// The job failed; the error message.
    Error(String),
    /// The admission queue (or connection cap) was full and the job was
    /// shed.
    Overloaded,
    /// The request never reached a handler: the frame was unparseable,
    /// failed its checksum, or stalled past a read deadline. Carries
    /// the reason; safe to retry by construction.
    Rejected(String),
}

impl Response {
    /// The frame kind and payload bytes this response serializes to.
    pub fn to_frame(&self) -> (FrameKind, &[u8]) {
        match self {
            Response::Ok(bytes) => (FrameKind::Ok, bytes.as_slice()),
            Response::Error(msg) => (FrameKind::Error, msg.as_bytes()),
            Response::Overloaded => (FrameKind::Overloaded, &[]),
            Response::Rejected(msg) => (FrameKind::Reject, msg.as_bytes()),
        }
    }

    /// Reassembles a response from a received frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] when a request frame arrives where a
    /// response belongs, or an error/reject payload is not UTF-8.
    pub fn from_frame(frame: Frame) -> Result<Response, ProtocolError> {
        match frame.kind {
            FrameKind::Ok => Ok(Response::Ok(frame.payload)),
            FrameKind::Error => String::from_utf8(frame.payload)
                .map(Response::Error)
                .map_err(|e| ProtocolError::Malformed(e.to_string())),
            FrameKind::Overloaded => Ok(Response::Overloaded),
            FrameKind::Reject => String::from_utf8(frame.payload)
                .map(Response::Rejected)
                .map_err(|e| ProtocolError::Malformed(e.to_string())),
            FrameKind::Request => Err(ProtocolError::Malformed(
                "request frame in response position".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for (kind, payload) in [
            (FrameKind::Request, b"hello".to_vec()),
            (FrameKind::Ok, Vec::new()),
            (FrameKind::Error, vec![0u8; 1000]),
            (FrameKind::Overloaded, Vec::new()),
            (FrameKind::Reject, b"deadline expired".to_vec()),
        ] {
            let bytes = encode_frame(kind, &payload).unwrap();
            let (frame, consumed) = decode_frame(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
            let mut cursor = std::io::Cursor::new(bytes);
            let frame = read_frame(&mut cursor).unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone() {
        let mut bytes = encode_frame(FrameKind::Request, b"x").unwrap();
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&bytes) {
            Err(ProtocolError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The streaming reader rejects it too, before allocating.
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let bytes = encode_frame(FrameKind::Request, b"abcdef").unwrap();
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(ProtocolError::Truncated { .. })
            ));
        }
        assert!(matches!(
            decode_frame(b"XXXXXXXXXXXXXXXXXXXX"),
            Err(ProtocolError::BadMagic(_))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(matches!(
            decode_frame(&wrong_version),
            Err(ProtocolError::BadVersion(9))
        ));
        let mut wrong_kind = bytes;
        wrong_kind[5] = 200;
        assert!(matches!(
            decode_frame(&wrong_kind),
            Err(ProtocolError::BadKind(200))
        ));
    }

    #[test]
    fn any_single_byte_payload_corruption_is_caught() {
        let bytes = encode_frame(FrameKind::Ok, b"mined document bytes").unwrap();
        for at in HEADER_LEN..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[at] ^= 0xA5;
            match decode_frame(&damaged) {
                Err(ProtocolError::Checksum { declared, actual }) => assert_ne!(declared, actual),
                other => panic!("corruption at byte {at} gave {other:?}"),
            }
            let mut cursor = std::io::Cursor::new(damaged);
            assert!(matches!(
                read_frame(&mut cursor),
                Err(ProtocolError::Checksum { .. })
            ));
        }
    }

    #[test]
    fn idempotency_matrix_matches_the_retry_policy() {
        let idempotent = [
            Request::Ping,
            Request::Mine {
                store: "corpus".into(),
                quarantine: false,
            },
            Request::Lint {
                app: "forwarder".into(),
                fixed: false,
            },
            Request::Slice {
                app: "ctp".into(),
                fixed: true,
                pcs: vec![],
            },
            Request::Stats,
        ];
        let not = [
            Request::Sleep { ms: 5 },
            Request::Panic,
            Request::Emulate {
                case: String::new(),
                period: 20,
                seconds: 1,
                nu: 0.05,
                seed: 1,
            },
            Request::Hunt {
                case: 1,
                fixed: false,
                seed: 1,
                top_k: 3,
            },
            Request::Shutdown,
        ];
        assert!(idempotent.iter().all(Request::is_idempotent));
        assert!(!not.iter().any(Request::is_idempotent));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::Ping,
            Request::Sleep { ms: 25 },
            Request::Panic,
            Request::Emulate {
                case: String::new(),
                period: 20,
                seconds: 2,
                nu: 0.05,
                seed: 7,
            },
            Request::Mine {
                store: "/tmp/corpus".into(),
                quarantine: true,
            },
            Request::Lint {
                app: "forwarder".into(),
                fixed: false,
            },
            Request::Slice {
                app: "oscilloscope".into(),
                fixed: true,
                pcs: vec![3, 9],
            },
            Request::Hunt {
                case: 2,
                fixed: false,
                seed: 41,
                top_k: 3,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in requests {
            let bytes = request.to_bytes().unwrap();
            assert_eq!(Request::from_bytes(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        for response in [
            Response::Ok(b"payload".to_vec()),
            Response::Error("boom".into()),
            Response::Overloaded,
            Response::Rejected("checksum mismatch".into()),
        ] {
            let (kind, payload) = response.to_frame();
            let bytes = encode_frame(kind, payload).unwrap();
            let (frame, _) = decode_frame(&bytes).unwrap();
            assert_eq!(Response::from_frame(frame).unwrap(), response);
        }
    }
}
