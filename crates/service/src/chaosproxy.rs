//! A seeded in-process TCP fault proxy — `core::chaos` for the wire.
//!
//! The crash harness of PR 7 proved the trace store survives a process
//! killed at any seed-derived write offset; this module applies the
//! same discipline to the connection path. A [`ChaosProxy`] sits
//! between a client and `sentomistd`, forwarding bytes both ways, and
//! injects wire faults — mid-frame disconnects, split writes, N-bytes-
//! then-stall slow-loris, half-close truncations, single-byte
//! corruption — as a **pure function of (chaos seed, connection
//! index)** in the repo's splitmix64 fault-plan style. Every failure a
//! soak run observes is replayable from its seed alone.
//!
//! Determinism boundary: *which* fault hits *which* connection at
//! *which* byte offset is pure ([`FaultPlan::fault_for`]); the
//! interleaving of the two forwarding directions is scheduled by the
//! OS, as it would be on a real link. The service-level properties the
//! soak asserts (typed errors, deadline cuts, retry convergence,
//! byte-identical responses) hold for every interleaving.
//!
//! The proxy itself is held to the daemon's own standard: every
//! forwarder thread is tracked and joined at
//! [`shutdown_and_join`](ChaosProxy::shutdown_and_join), so a fault
//! sweep cannot leak threads from the harness any more than from the
//! daemon under test.

use sentomist_core::supervise::splitmix64;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a forwarder wakes from a blocking read to poll the
/// shutdown and connection-dead flags.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// One direction of a proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    /// Bytes flowing from the client toward the daemon (requests).
    ClientToServer,
    /// Bytes flowing from the daemon toward the client (responses).
    ServerToClient,
}

/// A single wire fault, parameterized by absolute byte offsets within
/// the faulted direction's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WireFault {
    /// Forward everything untouched.
    None,
    /// Forward `offset` bytes, then tear down both directions of the
    /// connection — the mid-frame disconnect.
    Disconnect {
        /// Bytes forwarded before the cut.
        offset: u64,
    },
    /// Deliver every buffer in `chunk`-byte writes with a flush (and
    /// `TCP_NODELAY`) between them, forcing frame headers to arrive
    /// split across reads. Content is untouched; this is the fault the
    /// chunked-delivery proptest mirrors in-memory.
    SplitWrites {
        /// Write granularity in bytes (≥ 1).
        chunk: u64,
    },
    /// Forward `offset` bytes, then go silent while holding the
    /// connection open — the slow-loris. The victim's read deadline is
    /// what must cut it; the proxy only gives up after the plan's
    /// `max_stall` as a backstop.
    Stall {
        /// Bytes forwarded before the stall.
        offset: u64,
    },
    /// Forward `offset` bytes, then half-close the write side toward
    /// the destination (clean FIN mid-frame) while still draining the
    /// source. The receiver sees a typed `Truncated` error, and —
    /// unlike [`WireFault::Disconnect`] — the opposite direction stays
    /// alive, so a daemon's `Reject` answer still reaches the client.
    Truncate {
        /// Bytes forwarded before the FIN.
        offset: u64,
    },
    /// XOR the byte at `offset` with `0xA5` and keep forwarding — the
    /// corruption the frame checksum exists to catch.
    CorruptByte {
        /// Absolute offset of the damaged byte.
        offset: u64,
    },
}

/// The fault assigned to one proxied connection: at most one fault, in
/// one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ConnFault {
    /// Which direction the fault applies to.
    pub direction: Direction,
    /// The fault itself ([`WireFault::None`] for a clean connection).
    pub fault: WireFault,
}

impl ConnFault {
    /// A connection the proxy forwards untouched.
    pub fn clean() -> ConnFault {
        ConnFault {
            direction: Direction::ClientToServer,
            fault: WireFault::None,
        }
    }
}

/// The seeded fault plan: everything the proxy will ever do to
/// connection *i* is a pure function of `(seed, i)`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The chaos seed.
    pub seed: u64,
    /// Probability in `[0, 1]` that a given connection is faulted.
    pub rate: f64,
    /// Backstop on how long a [`WireFault::Stall`] holds its
    /// connection before the proxy gives up and disconnects. The
    /// victim's read deadline is expected to fire first.
    pub max_stall: Duration,
}

impl FaultPlan {
    /// A plan faulting roughly `rate` of connections under `seed`.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            max_stall: Duration::from_secs(5),
        }
    }

    /// The fault for connection `conn_index` — pure, allocation-free,
    /// and stable across runs: the replay key for every failure a soak
    /// observes.
    ///
    /// Offsets are drawn from `0..=40` so they land inside the 14-byte
    /// header or the early payload of realistic frames; a fault whose
    /// offset the stream never reaches degrades to a no-op, which is
    /// itself deterministic.
    pub fn fault_for(&self, conn_index: u64) -> ConnFault {
        let h = splitmix64(self.seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.rate {
            return ConnFault::clean();
        }
        let h = splitmix64(h);
        let direction = if h & 1 == 0 {
            Direction::ClientToServer
        } else {
            Direction::ServerToClient
        };
        let h = splitmix64(h);
        let offset = splitmix64(h) % 41;
        let fault = match h % 5 {
            0 => WireFault::Disconnect { offset },
            1 => WireFault::SplitWrites {
                chunk: 1 + splitmix64(h) % 7,
            },
            2 => WireFault::Stall { offset },
            3 => WireFault::Truncate { offset },
            _ => WireFault::CorruptByte { offset },
        };
        ConnFault { direction, fault }
    }
}

/// Counters the proxy keeps; a fault counts only when it actually
/// fired (an offset past the end of a short stream is a no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ProxyStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections whose plan carried a real fault.
    pub faulted_connections: u64,
    /// Mid-frame disconnects actually executed.
    pub disconnects: u64,
    /// Connections delivered via split writes.
    pub splits: u64,
    /// Slow-loris stalls actually entered.
    pub stalls: u64,
    /// Half-close truncations actually executed.
    pub truncations: u64,
    /// Bytes actually corrupted.
    pub corruptions: u64,
}

#[derive(Default)]
struct ProxyCounters {
    connections: AtomicU64,
    faulted_connections: AtomicU64,
    disconnects: AtomicU64,
    splits: AtomicU64,
    stalls: AtomicU64,
    truncations: AtomicU64,
    corruptions: AtomicU64,
}

struct ProxyShared {
    plan: FaultPlan,
    upstream: SocketAddr,
    shutdown: AtomicBool,
    counters: ProxyCounters,
    forwarders: Mutex<Vec<JoinHandle<()>>>,
}

/// A running fault proxy. Clients connect to
/// [`local_addr`](ChaosProxy::local_addr); bytes are forwarded to the
/// upstream daemon with the plan's faults applied.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying toward `upstream`.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listen socket.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            plan,
            upstream,
            shutdown: AtomicBool::new(false),
            counters: ProxyCounters::default(),
            forwarders: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(ChaosProxy {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> ProxyStats {
        let c = &self.shared.counters;
        ProxyStats {
            connections: c.connections.load(Ordering::Relaxed),
            faulted_connections: c.faulted_connections.load(Ordering::Relaxed),
            disconnects: c.disconnects.load(Ordering::Relaxed),
            splits: c.splits.load(Ordering::Relaxed),
            stalls: c.stalls.load(Ordering::Relaxed),
            truncations: c.truncations.load(Ordering::Relaxed),
            corruptions: c.corruptions.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, tears down live connections, and joins every
    /// thread the proxy ever spawned. Returns the number of forwarder
    /// threads joined — the harness's own no-leak proof.
    pub fn shutdown_and_join(mut self) -> usize {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles = match self.shared.forwarders.lock() {
            Ok(mut guard) => guard.drain(..).collect::<Vec<_>>(),
            Err(poisoned) => poisoned.into_inner().drain(..).collect(),
        };
        let joined = handles.len();
        for handle in handles {
            let _ = handle.join();
        }
        joined
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let client = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let conn_index = shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let fault = shared.plan.fault_for(conn_index);
        if fault.fault != WireFault::None {
            shared
                .counters
                .faulted_connections
                .fetch_add(1, Ordering::Relaxed);
        }
        let upstream = match TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(5)) {
            Ok(stream) => stream,
            Err(_) => continue, // client sees EOF: a connect-class failure
        };
        spawn_forwarders(shared, client, upstream, fault);
    }
}

/// Starts the two forwarder threads for one connection and records
/// their handles for the shutdown join.
fn spawn_forwarders(
    shared: &Arc<ProxyShared>,
    client: TcpStream,
    upstream: TcpStream,
    fault: ConnFault,
) {
    let dead = Arc::new(AtomicBool::new(false));
    let fault_in = |direction| {
        if fault.direction == direction {
            fault.fault
        } else {
            WireFault::None
        }
    };
    let mut handles = Vec::with_capacity(2);
    for (direction, src, dst) in [
        (
            Direction::ClientToServer,
            client.try_clone(),
            upstream.try_clone(),
        ),
        (
            Direction::ServerToClient,
            upstream.try_clone(),
            client.try_clone(),
        ),
    ] {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            kill_pair(&client, &upstream, &dead);
            break;
        };
        let shared = Arc::clone(shared);
        let dead = Arc::clone(&dead);
        let fault = fault_in(direction);
        handles.push(std::thread::spawn(move || {
            forward(&shared, src, dst, fault, &dead);
        }));
    }
    match shared.forwarders.lock() {
        Ok(mut guard) => guard.extend(handles),
        Err(poisoned) => poisoned.into_inner().extend(handles),
    }
}

/// Tears down both sockets of a connection; the partner forwarder's
/// read unblocks with EOF/error and it exits.
fn kill_pair(a: &TcpStream, b: &TcpStream, dead: &AtomicBool) {
    dead.store(true, Ordering::SeqCst);
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// One direction of one connection: read from `src`, apply the fault,
/// write to `dst`. Exits on EOF, I/O error, terminal fault, connection
/// death, or proxy shutdown.
fn forward(
    shared: &Arc<ProxyShared>,
    mut src: TcpStream,
    mut dst: TcpStream,
    fault: WireFault,
    dead: &AtomicBool,
) {
    // Short read timeouts keep the thread pollable: it observes the
    // shutdown and dead flags within one POLL_INTERVAL.
    let _ = src.set_read_timeout(Some(POLL_INTERVAL));
    if matches!(fault, WireFault::SplitWrites { .. }) {
        // Without NODELAY the kernel would coalesce the split writes
        // and the fault would not reach the victim's reads.
        let _ = dst.set_nodelay(true);
    }
    let counters = &shared.counters;
    let mut offset: u64 = 0;
    let mut discard = false; // true after a Truncate fired: drain src, write nothing
    let mut split_counted = false;
    let mut buf = [0u8; 4096];
    loop {
        if dead.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
            kill_pair(&src, &dst, dead);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Clean EOF from the source: propagate the FIN and let
                // the opposite direction finish on its own.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                kill_pair(&src, &dst, dead);
                return;
            }
        };
        let chunk = &mut buf[..n];
        let end = offset + n as u64;
        if discard {
            offset = end;
            continue;
        }
        match fault {
            WireFault::None => {
                if dst.write_all(chunk).is_err() {
                    kill_pair(&src, &dst, dead);
                    return;
                }
            }
            WireFault::CorruptByte { offset: at } => {
                if at >= offset && at < end {
                    chunk[(at - offset) as usize] ^= 0xA5;
                    counters.corruptions.fetch_add(1, Ordering::Relaxed);
                }
                if dst.write_all(chunk).is_err() {
                    kill_pair(&src, &dst, dead);
                    return;
                }
            }
            WireFault::SplitWrites { chunk: size } => {
                if !split_counted {
                    counters.splits.fetch_add(1, Ordering::Relaxed);
                    split_counted = true;
                }
                for piece in chunk.chunks(size.max(1) as usize) {
                    if dst.write_all(piece).and_then(|()| dst.flush()).is_err() {
                        kill_pair(&src, &dst, dead);
                        return;
                    }
                    // Give the kernel a scheduling point so the victim
                    // genuinely observes separate reads.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            WireFault::Disconnect { offset: at } => {
                if at < end {
                    let keep = at.saturating_sub(offset) as usize;
                    let _ = dst.write_all(&chunk[..keep]);
                    counters.disconnects.fetch_add(1, Ordering::Relaxed);
                    kill_pair(&src, &dst, dead);
                    return;
                }
                if dst.write_all(chunk).is_err() {
                    kill_pair(&src, &dst, dead);
                    return;
                }
            }
            WireFault::Truncate { offset: at } => {
                if at < end {
                    let keep = at.saturating_sub(offset) as usize;
                    let _ = dst.write_all(&chunk[..keep]);
                    let _ = dst.shutdown(Shutdown::Write);
                    counters.truncations.fetch_add(1, Ordering::Relaxed);
                    // Keep draining src so the opposite direction can
                    // still carry the daemon's typed answer back.
                    discard = true;
                } else if dst.write_all(chunk).is_err() {
                    kill_pair(&src, &dst, dead);
                    return;
                }
            }
            WireFault::Stall { offset: at } => {
                if at < end {
                    let keep = at.saturating_sub(offset) as usize;
                    let _ = dst.write_all(&chunk[..keep]);
                    counters.stalls.fetch_add(1, Ordering::Relaxed);
                    stall(shared, &src, &dst, dead);
                    return;
                }
                if dst.write_all(chunk).is_err() {
                    kill_pair(&src, &dst, dead);
                    return;
                }
            }
        }
        offset = end;
    }
}

/// The slow-loris hold: keep the connection open and silent until the
/// victim's deadline cuts it from the far side, the proxy shuts down,
/// or `max_stall` expires as a backstop.
fn stall(shared: &Arc<ProxyShared>, src: &TcpStream, dst: &TcpStream, dead: &AtomicBool) {
    let started = Instant::now();
    while !dead.load(Ordering::SeqCst)
        && !shared.shutdown.load(Ordering::SeqCst)
        && started.elapsed() < shared.plan.max_stall
    {
        std::thread::sleep(POLL_INTERVAL);
    }
    kill_pair(src, dst, dead);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_pure_functions_of_seed_and_index() {
        let plan = FaultPlan::new(0xC0FFEE, 0.5);
        for conn in 0..200 {
            assert_eq!(plan.fault_for(conn), plan.fault_for(conn));
        }
        // A different seed reshuffles the plan.
        let other = FaultPlan::new(0xC0FFEE + 1, 0.5);
        assert!((0..200).any(|c| plan.fault_for(c) != other.fault_for(c)));
    }

    #[test]
    fn fault_rate_is_roughly_respected_and_faults_are_diverse() {
        let plan = FaultPlan::new(7, 0.5);
        let faults: Vec<ConnFault> = (0..400).map(|c| plan.fault_for(c)).collect();
        let faulted = faults.iter().filter(|f| f.fault != WireFault::None).count();
        assert!(
            (100..300).contains(&faulted),
            "rate 0.5 gave {faulted}/400 faulted connections"
        );
        let mut kinds = std::collections::BTreeSet::new();
        for f in &faults {
            kinds.insert(match f.fault {
                WireFault::None => 0,
                WireFault::Disconnect { .. } => 1,
                WireFault::SplitWrites { .. } => 2,
                WireFault::Stall { .. } => 3,
                WireFault::Truncate { .. } => 4,
                WireFault::CorruptByte { .. } => 5,
            });
        }
        // None + all five fault kinds appear in a 400-connection sweep.
        assert_eq!(kinds.len(), 6);
        assert!(faults
            .iter()
            .any(|f| f.direction == Direction::ClientToServer && f.fault != WireFault::None));
        assert!(faults
            .iter()
            .any(|f| f.direction == Direction::ServerToClient && f.fault != WireFault::None));
    }

    #[test]
    fn rate_zero_is_a_transparent_proxy_plan() {
        let plan = FaultPlan::new(99, 0.0);
        assert!((0..200).all(|c| plan.fault_for(c).fault == WireFault::None));
    }

    #[test]
    fn rate_one_faults_every_connection() {
        let plan = FaultPlan::new(99, 1.0);
        assert!((0..200).all(|c| plan.fault_for(c).fault != WireFault::None));
    }
}
