//! The digest-keyed read-through result cache.
//!
//! A mine request against an unchanged store should not re-replay a
//! single chunk. The cache keys on *what corpus the request names* (the
//! canonicalized store path plus the quarantine flag, which changes the
//! document) and validates on *what that corpus currently is*: the
//! store's [`CorpusFingerprint`] — index generation + content digest.
//! `trace merge` bumps the generation even when content is unchanged, so
//! a merge always invalidates; any repair or ingestion that alters the
//! entries moves the digest and invalidates too. A hit serves the exact
//! cached document bytes, preserving the byte-identity contract.

use sentomist_tracestore::CorpusFingerprint;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What corpus a cached result answers for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonicalized store root.
    pub store: PathBuf,
    /// Whether quarantine-and-continue mining was requested (it adds a
    /// document section, so it is part of the identity).
    pub quarantine: bool,
}

impl CacheKey {
    /// Builds the key for a store path, canonicalizing so `/x/../x` and
    /// `x` hit the same entry. Falls back to the path as given when it
    /// cannot be canonicalized (the store open will fail with the real
    /// error anyway).
    pub fn new(store: &Path, quarantine: bool) -> CacheKey {
        CacheKey {
            store: std::fs::canonicalize(store).unwrap_or_else(|_| store.to_path_buf()),
            quarantine,
        }
    }
}

struct CacheEntry {
    key: CacheKey,
    fingerprint: CorpusFingerprint,
    document: Arc<Vec<u8>>,
}

/// A bounded, fingerprint-validated result cache with FIFO eviction.
pub struct ResultCache {
    entries: Mutex<VecDeque<CacheEntry>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` documents (minimum 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up the document for `key` **iff** it was cached at exactly
    /// `current` — the fingerprint the store reports right now. A stale
    /// entry (key present, fingerprint moved) is dropped on the spot.
    /// Every call counts as a hit or a miss.
    pub fn lookup(&self, key: &CacheKey, current: CorpusFingerprint) -> Option<Arc<Vec<u8>>> {
        let mut entries = match self.entries.lock() {
            Ok(e) => e,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if let Some(pos) = entries.iter().position(|e| &e.key == key) {
            if entries[pos].fingerprint == current {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(&entries[pos].document));
            }
            // The store advanced since this was cached: invalidate.
            entries.remove(pos);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Caches `document` for `key` as of `fingerprint`, replacing any
    /// entry for the same key and evicting the oldest entry at capacity.
    pub fn insert(&self, key: CacheKey, fingerprint: CorpusFingerprint, document: Arc<Vec<u8>>) {
        let Ok(mut entries) = self.entries.lock() else {
            return;
        };
        if let Some(pos) = entries.iter().position(|e| e.key == key) {
            entries.remove(pos);
        }
        while entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(CacheEntry {
            key,
            fingerprint,
            document,
        });
    }

    /// Served-from-cache count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cold (or invalidated) lookup count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Documents currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().map(|e| e.len()).unwrap_or(0)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(generation: u64, digest: u64) -> CorpusFingerprint {
        CorpusFingerprint { generation, digest }
    }

    fn key(name: &str) -> CacheKey {
        CacheKey {
            store: PathBuf::from(name),
            quarantine: false,
        }
    }

    #[test]
    fn hit_requires_matching_fingerprint() {
        let cache = ResultCache::new(4);
        let doc = Arc::new(b"{}\n".to_vec());
        cache.insert(key("a"), fp(1, 42), Arc::clone(&doc));
        assert_eq!(cache.lookup(&key("a"), fp(1, 42)).as_deref(), Some(&*doc));
        assert_eq!(cache.hits(), 1);
        // Generation bump (e.g. `trace merge`) invalidates even with the
        // same content digest.
        assert!(cache.lookup(&key("a"), fp(2, 42)).is_none());
        assert_eq!(cache.misses(), 1);
        // And the stale entry is gone: same old fingerprint misses now.
        assert!(cache.lookup(&key("a"), fp(1, 42)).is_none());
    }

    #[test]
    fn quarantine_flag_is_part_of_the_key() {
        let cache = ResultCache::new(4);
        let plain = CacheKey {
            store: PathBuf::from("s"),
            quarantine: false,
        };
        let quarantined = CacheKey {
            store: PathBuf::from("s"),
            quarantine: true,
        };
        cache.insert(plain.clone(), fp(1, 7), Arc::new(b"plain".to_vec()));
        assert!(cache.lookup(&quarantined, fp(1, 7)).is_none());
        assert!(cache.lookup(&plain, fp(1, 7)).is_some());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let cache = ResultCache::new(2);
        cache.insert(key("a"), fp(1, 1), Arc::new(vec![b'a']));
        cache.insert(key("b"), fp(1, 2), Arc::new(vec![b'b']));
        cache.insert(key("c"), fp(1, 3), Arc::new(vec![b'c']));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key("a"), fp(1, 1)).is_none());
        assert!(cache.lookup(&key("b"), fp(1, 2)).is_some());
        assert!(cache.lookup(&key("c"), fp(1, 3)).is_some());
    }
}
