//! Case study I end-to-end: hunt the Figure-2 data-pollution race in the
//! Oscilloscope-style data-collection application, exactly as the paper's
//! Section VI-B evaluation (five testing runs, D = 20..100 ms, 10 s each),
//! then show what a developer would see when inspecting the top-ranked
//! interval — including the bug-localization extension mapping the
//! symptom back to assembly lines.
//!
//! Run with: `cargo run --release --example data_pollution`

use sentomist::apps::{oscilloscope, run_case1, Case1Config};
use sentomist::core::localize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Case1Config::default();
    println!(
        "Testing runs: D = {:?} ms, {} s each, one-class SVM\n",
        config.periods_ms, config.run_seconds
    );
    let result = run_case1(&config)?;

    println!(
        "Collected {} ADC event-handling intervals (paper: 1099).",
        result.sample_count
    );
    println!("Ranking (Figure 5(a) format):");
    print!("{}", result.report.table(8, 2));

    println!(
        "\nGround truth: {} intervals contain the data race, at ranks {:?}.",
        result.buggy.len(),
        result.buggy_ranks
    );
    println!(
        "A tester inspecting the ranking top-down hits a real symptom \
         immediately (paper: top three all confirmed the bug)."
    );

    // --- Bug localization (the paper's future-work extension) -----------
    // Re-run the first testing run and ask which instructions make the
    // top outlier deviate: the doubled readDone body shows up on top.
    let params = oscilloscope::OscilloscopeParams::with_period_ms(config.periods_ms[0]);
    let program = oscilloscope::buggy(&params)?;
    let mut node = sentomist::tinyvm::node::Node::new(
        program.clone(),
        sentomist::tinyvm::devices::NodeConfig {
            seed: config.seed,
            ..Default::default()
        },
    );
    let mut rec = sentomist::trace::Recorder::new(program.len());
    node.run(10_000_000, &mut rec)?;
    let trace = rec.into_trace();
    let samples = sentomist::core::harvest(&trace, sentomist::tinyvm::isa::irq::ADC, |s, _| {
        sentomist::core::SampleIndex::Seq(s)
    })?;
    let report = sentomist::core::Pipeline::default_ocsvm(0.05).rank(samples.clone())?;
    let top = report.ranking[0].index;
    let flagged = samples
        .iter()
        .position(|s| s.index == top)
        .expect("top sample exists");
    println!("\nLocalizing the top outlier of run 1 ({top}):");
    for hit in localize(&samples, flagged, &program, 0.9)
        .into_iter()
        .take(10)
    {
        println!(
            "  pc {:>3}  z = {:>6.1}  observed {:>5.0} vs expected {:>6.1}  \
             ({} @ line {})",
            hit.pc,
            hit.z_score,
            hit.observed,
            hit.expected,
            hit.routine.as_deref().unwrap_or("?"),
            hit.source_line.map(|l| l.to_string()).unwrap_or_default(),
        );
    }
    println!(
        "\nTwo signals implicate the race: the housekeeping loop that \
         delayed the queued send task (the race window), and the readDone \
         body executing twice within one interval — the doubled execution \
         the paper describes."
    );
    Ok(())
}
