//! Case study III end-to-end: the unhandled send-failure hang when a
//! CTP-style collection protocol and a heartbeat protocol race for one
//! radio chip on a 9-node tree (paper Section VI-D).
//!
//! Run with: `cargo run --release --example protocol_contention`

use sentomist::apps::{ctp, run_case3, Case3Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Case3Config::default();
    println!(
        "9-node collection tree, sources {:?}, heartbeat every 500 ms, {} s\n",
        ctp::SOURCES,
        config.run_seconds
    );
    let result = run_case3(&config)?;

    println!(
        "Pooled {} report-timer intervals from the {} source nodes \
         (paper: 95).",
        result.sample_count,
        ctp::SOURCES.len()
    );
    println!("Ranking (Figure 5(c) format):");
    print!("{}", result.report.table(7, 2));

    match result.buggy.first() {
        Some(ix) => {
            println!(
                "\nGround truth: the unhandled FAIL occurred in interval {ix}, \
                 ranked {} (paper: rank 4).",
                result.buggy_ranks[0]
            );
            println!(
                "After that instant the node's collection protocol is hung: \
                 its busy mark is never cleared, every later report takes the \
                 silent short path, and no packet leaves the node — exactly \
                 the CTP behavior discussed on the tinyos-devel list."
            );
        }
        None => println!(
            "\nNo contention hang occurred under this seed; rerun with \
             another seed to observe one."
        ),
    }

    // The one-line fix: clear the busy mark when send() fails.
    let fixed = run_case3(&Case3Config {
        use_fixed: true,
        ..config
    })?;
    println!(
        "\nFixed variant under the same contention: transient failures {} \
         (each retried on the next tick; the protocol keeps collecting).",
        fixed.buggy.len()
    );
    Ok(())
}
