//! Case study II end-to-end: the busy-flag packet-drop bug in a
//! three-node forwarding chain (paper Section VI-C), with a side-by-side
//! run of the fixed relay to show the loss disappearing.
//!
//! Run with: `cargo run --release --example multihop_forwarding`

use sentomist::apps::{run_case2, Case2Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Case2Config::default();
    println!(
        "3-node chain (source -> relay -> sink), {} s, randomized gaps\n",
        config.run_seconds
    );
    let result = run_case2(&config)?;

    println!(
        "Relay handled {} packet-arrival intervals (paper: 195).",
        result.sample_count
    );
    println!("Ranking (Figure 5(b) format):");
    print!("{}", result.report.table(7, 2));
    println!(
        "\nGround truth: {} arrivals were actively dropped by the busy-flag \
         bug, ranked {:?} (paper: 3 drops, ranked top-3).",
        result.buggy.len(),
        result.buggy_ranks
    );
    println!(
        "From the outside these losses are indistinguishable from ordinary \
         wireless losses — the instruction-counter outliers expose them."
    );

    // The fix: defer the packet until sendDone instead of dropping.
    let fixed = run_case2(&Case2Config {
        use_fixed: true,
        ..config
    })?;
    println!(
        "\nFixed relay under the same workload: {} arrivals, {} drops.",
        fixed.sample_count,
        fixed.buggy.len()
    );
    Ok(())
}
