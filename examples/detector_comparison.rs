//! Detector ablation (paper Section VI-E): the outlier detector is a
//! plug-in — compare the one-class SVM against PCA, kNN and Mahalanobis
//! on all three case studies, reporting where each detector ranks the
//! ground-truth bug symptoms.
//!
//! Run with: `cargo run --release --example detector_comparison`

use sentomist::apps::{
    run_case1, run_case2, run_case3, Case1Config, Case2Config, Case3Config, CaseResult,
    DetectorKind,
};

fn row(case: &str, kind: DetectorKind, result: &CaseResult) {
    println!(
        "{:<8} {:<12} {:>7} {:>7}   {:?}",
        case,
        kind.name(),
        result.sample_count,
        result.buggy.len(),
        result.buggy_ranks,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:<12} {:>7} {:>7}   symptom ranks (lower = better)",
        "case", "detector", "samples", "buggy"
    );
    for kind in DetectorKind::all(0.05) {
        let result = run_case1(&Case1Config {
            detector: kind,
            ..Case1Config::default()
        })?;
        row("case-1", kind, &result);
    }
    for kind in DetectorKind::all(0.05) {
        let result = run_case2(&Case2Config {
            detector: kind,
            ..Case2Config::default()
        })?;
        row("case-2", kind, &result);
    }
    for kind in DetectorKind::all(0.1) {
        let result = run_case3(&Case3Config {
            detector: kind,
            ..Case3Config::default()
        })?;
        row("case-3", kind, &result);
    }
    println!(
        "\nReading: OC-SVM (the paper's choice) and the distance-based \
         detectors surface the symptoms; PCA can be *masked* when the \
         outliers themselves dominate the principal components."
    );
    Ok(())
}
