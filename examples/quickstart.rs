//! Quickstart: assemble a tiny event-driven sensor application, run it on
//! the emulator, and watch Sentomist anatomize its runtime into
//! event-handling intervals — reproducing the timeline of the paper's
//! Figure 1 from a live trace.
//!
//! Run with: `cargo run --example quickstart`

use sentomist::core::{harvest, Pipeline, SampleIndex};
use sentomist::tinyvm::{self, devices::NodeConfig, node::Node};
use sentomist::trace::Recorder;
use std::sync::Arc;

/// An application shaped like the paper's Figure 1: the interrupt handler
/// posts tasks A and B; A posts C; a second interrupt line occasionally
/// preempts the tasks.
const APP: &str = "\
.handler TIMER0 on_event
.handler TIMER1 on_other
.task task_a
.task task_b
.task task_c
.data work 1
main:
 ldi r1, 8            ; the analyzed event: every ~2 ms
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ldi r1, 13           ; an unrelated interrupt source
 out TIMER1_PERIOD, r1
 out TIMER1_CTRL, r1
 ret

on_event:
 post task_a
 post task_b
 reti

on_other:
 lda r1, work
 addi r1, 1
 sta work, r1
 reti

task_a:
 post task_c
 ldi r2, 40
a_spin:
 subi r2, 1
 brne a_spin
 ret

task_b:
 ldi r2, 120
b_spin:
 subi r2, 1
 brne b_spin
 ret

task_c:
 ldi r2, 60
c_spin:
 subi r2, 1
 brne c_spin
 ret
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble and run the application for 50 simulated milliseconds,
    //    recording the system lifecycle sequence.
    let program = Arc::new(tinyvm::assemble(APP)?);
    let mut node = Node::new(program.clone(), NodeConfig::default());
    let mut recorder = Recorder::new(program.len());
    node.run(50_000, &mut recorder)?;
    let trace = recorder.into_trace();

    // 2. Anatomize: every TIMER0 interrupt starts an event-procedure
    //    instance whose lifetime ends when its last transitively posted
    //    task finishes (paper Definition 2, inferred by the Figure-4
    //    algorithm from the lifecycle sequence alone).
    let extraction = sentomist::trace::extract(&trace)?;
    println!("lifecycle events recorded : {}", trace.events.len());
    println!("event-handling intervals  : {}", extraction.intervals.len());

    // Print the first TIMER0 instance as a Figure-1 style timeline.
    let first = extraction
        .intervals
        .iter()
        .find(|iv| iv.irq == tinyvm::isa::irq::TIMER0)
        .expect("the timer fired");
    println!(
        "\nFigure-1 timeline of the first TIMER0 instance \
         (t0 = cycle {}):",
        first.start_cycle
    );
    for i in first.start_index..=first.end_index {
        let ev = &trace.events[i];
        println!("  t+{:<6} {}", ev.cycle - first.start_cycle, ev.item);
    }
    println!(
        "  => lifetime {} cycles, {} tasks posted",
        first.end_cycle - first.start_cycle,
        first.task_count
    );

    // 3. Featurize + mine: rank all TIMER0 intervals by suspicion with the
    //    default one-class SVM. (This app is healthy, so the ranking just
    //    reflects benign timing variation.)
    let samples = harvest(&trace, tinyvm::isa::irq::TIMER0, |seq, _| {
        SampleIndex::Seq(seq)
    })?;
    let report = Pipeline::default_ocsvm(0.3).rank(samples)?;
    println!("\nSuspicion ranking (top 5 / bottom 2):");
    print!("{}", report.table(5, 2));
    Ok(())
}
