//! A fourth scenario beyond the paper's case studies: **lost timer
//! interrupts**. MCU interrupt controllers hold one pending bit per line;
//! if a line fires twice while its handler is still in service, the
//! second event is silently lost. Here a metronome handler occasionally
//! calls a slow maintenance routine (data-dependent, rare) that runs
//! longer than the timer period — ticks vanish, timestamps drift, and
//! nothing crashes.
//!
//! Sentomist flags the slow instances without being told what "slow"
//! means: their instruction counters deviate.
//!
//! Run with: `cargo run --release --example lost_ticks`

use sentomist::core::{harvest, localize, Pipeline, SampleIndex};
use sentomist::tinyvm::{self, devices::NodeConfig, node::Node};
use sentomist::trace::Recorder;
use std::sync::Arc;

/// Ticks every ~4 ms and counts; roughly 1 fire in 128 triggers a
/// maintenance scan whose duration exceeds the period.
const METRONOME: &str = "\
.handler TIMER0 tick
.data ticks 1
main:
 ldi r1, 16           ; 4.1 ms period
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
tick:
 lda r1, ticks
 addi r1, 1
 sta ticks, r1
 in r2, RAND
 ldi r3, 127
 and r2, r3
 cmpi r2, 0
 brne tick_done
 ; rare maintenance scan: ~6 ms > the 4.1 ms period -> the next timer
 ; interrupt arrives while this handler is in service; the one after
 ; that overwrites the single pending bit and is LOST.
 ldi r4, 2000
scan:
 subi r4, 1
 brne scan
tick_done:
 reti
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Arc::new(tinyvm::assemble(METRONOME)?);
    let seconds = 20u64;
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed: 9,
            ..NodeConfig::default()
        },
    );
    let mut recorder = Recorder::new(program.len());
    node.run(seconds * 1_000_000, &mut recorder)?;
    let trace = recorder.into_trace();

    // External symptom: the tick counter lags wall-clock time.
    let ticks = node.mem()[program.label("ticks").unwrap() as usize] as u64;
    let expected = seconds * 1_000_000 / (16 * 256);
    println!(
        "ticks counted: {ticks}, timer periods elapsed: {expected} \
         => {} interrupts lost",
        expected - ticks
    );

    // Sentomist's view: rank the tick intervals.
    let samples = harvest(&trace, tinyvm::isa::irq::TIMER0, |s, _| SampleIndex::Seq(s))?;
    let report = Pipeline::default_ocsvm(0.05).rank(samples.clone())?;
    println!("\n{} tick intervals; most suspicious:", samples.len());
    print!("{}", report.table(6, 2));

    // Every flagged interval is indeed a slow one (it executed the scan).
    let scan_pc = program.label("scan").unwrap() as usize;
    let slow_total = samples.iter().filter(|s| s.features[scan_pc] > 0.0).count();
    let slow_in_top: usize = report
        .top(slow_total)
        .iter()
        .filter(|r| {
            samples
                .iter()
                .find(|s| s.index == r.index)
                .is_some_and(|s| s.features[scan_pc] > 0.0)
        })
        .count();
    println!(
        "\nground truth: {slow_total} slow instances; {slow_in_top} of the \
         top {slow_total} ranked intervals are slow ones."
    );

    // Localization points straight at the scan loop.
    let flagged = samples
        .iter()
        .position(|s| s.index == report.ranking[0].index)
        .unwrap();
    if let Some(hit) = localize(&samples, flagged, &program, 2.0).first() {
        println!(
            "top deviating instruction: pc {} in `{}` (line {}) — the \
             maintenance scan.",
            hit.pc,
            hit.routine.as_deref().unwrap_or("?"),
            hit.source_line.unwrap_or(0)
        );
    }
    Ok(())
}
