//! Live monitoring with the streaming extractor: instead of recording a
//! full trace and anatomizing it afterwards, track event-procedure
//! instances *as the node runs* — memory stays bounded by concurrent
//! activity, not by trace length. Suspicious intervals can then be
//! re-scored periodically (here: once, at the end of a monitoring window).
//!
//! Run with: `cargo run --release --example online_monitoring`

use sentomist::apps::oscilloscope::{self, OscilloscopeParams};
use sentomist::tinyvm::{self, devices::NodeConfig, node::Node, LifecycleItem, TraceSink};
use sentomist::trace::{EventInterval, OnlineExtractor};

/// A sink that feeds the streaming extractor directly — no trace is
/// stored; only completed intervals (and their rolling statistics) are.
struct LiveMonitor {
    extractor: OnlineExtractor,
    index: usize,
    completed: Vec<EventInterval>,
    peak_open: usize,
    events_seen: usize,
}

impl TraceSink for LiveMonitor {
    fn lifecycle(&mut self, cycle: u64, item: LifecycleItem) {
        self.completed
            .extend(self.extractor.feed(self.index, cycle, item));
        self.index += 1;
        self.events_seen += 1;
        self.peak_open = self.peak_open.max(self.extractor.open_instances());
    }
    fn segment(&mut self, _counts: &[u32]) {
        // A live deployment would fold counts into per-open-instance
        // accumulators; this example monitors interval *shape* only
        // (duration and task counts), which already exposes the race.
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = OscilloscopeParams::with_period_ms(20);
    let program = oscilloscope::buggy(&params)?;
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed: 2,
            ..NodeConfig::default()
        },
    );
    let mut monitor = LiveMonitor {
        extractor: OnlineExtractor::new(),
        index: 0,
        completed: Vec::new(),
        peak_open: 0,
        events_seen: 0,
    };
    node.run(10_000_000, &mut monitor)?;

    println!(
        "monitored 10 simulated seconds: {} lifecycle events, {} intervals \
         completed, peak {} instances open at once (memory bound).",
        monitor.events_seen,
        monitor.completed.len(),
        monitor.peak_open,
    );

    // Shape-only screening: for the ADC event type, flag intervals whose
    // lifetime dwarfs the population median — the race stretches the
    // posting instance across the entire delayed-send window.
    let mut adc: Vec<&EventInterval> = monitor
        .completed
        .iter()
        .filter(|iv| iv.irq == tinyvm::isa::irq::ADC)
        .collect();
    adc.sort_by_key(|iv| iv.end_cycle - iv.start_cycle);
    let median = adc[adc.len() / 2].end_cycle - adc[adc.len() / 2].start_cycle;
    println!(
        "\nADC intervals: {} (median lifetime {} cycles)",
        adc.len(),
        median
    );
    println!("longest-lived instances (live screening, no SVM yet):");
    for iv in adc.iter().rev().take(5) {
        let span = iv.end_cycle - iv.start_cycle;
        println!(
            "  start cycle {:>9}  lifetime {:>7} cycles ({:>5.1}x median)  tasks {}",
            iv.start_cycle,
            span,
            span as f64 / median as f64,
            iv.task_count,
        );
    }
    println!(
        "\nIn the full pipeline these screened instances (and their \
         instruction counters) would go to the plug-in detector; the \
         streaming tracker makes that possible on an open-ended run."
    );
    Ok(())
}
