//! # Sentomist — unveiling transient sensor network bugs via symptom mining
//!
//! A from-scratch Rust reproduction of Zhou, Chen, Lyu & Liu,
//! ["Sentomist: Unveiling Transient Sensor Network Bugs via Symptom
//! Mining"](https://doi.org/10.1109/ICDCS.2010.75), ICDCS 2010 — including
//! every substrate the paper depends on:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`tinyvm`] | Cycle-accounted sensor-node MCU emulator with TinyOS concurrency semantics (the Avrora role) |
//! | [`netsim`] | Deterministic multi-node radio simulation |
//! | [`trace`] | Lifecycle traces, the int-reti grammar, the Figure-4 interval extraction, instruction counters |
//! | [`tracestore`] | Persistent, versioned on-disk corpus of lifecycle traces (re-mine without re-emulating) |
//! | [`mlcore`] | One-class ν-SVM (SMO) and alternative plug-in outlier detectors |
//! | [`staticlint`] | Static interleaving analyzer: CFG, context reachability, race rules |
//! | [`core`] | The symptom-mining pipeline: scale → detect → normalize → rank (+ bug localization) |
//! | [`apps`] | The paper's three case studies with their transient bugs injected, plus oracles |
//!
//! ## Quickstart
//!
//! ```
//! use sentomist::apps::{run_case2, Case2Config};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Case study II: a relay that silently drops packets when its radio
//! // is mid-transmission. Run the 3-node chain for 20 simulated seconds,
//! // mine the relay's packet-arrival intervals, and rank them.
//! let result = run_case2(&Case2Config::default())?;
//! println!("{}", result.report.table(7, 2));
//! // The three true drop symptoms rank 1-2-3 out of ~200 intervals.
//! assert_eq!(result.buggy_ranks, vec![1, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mlcore;
pub use netsim;
pub use staticlint;
pub use tinyvm;

/// Case studies and experiment drivers (re-export of `sentomist-apps`).
pub use sentomist_apps as apps;
/// The symptom-mining pipeline (re-export of `sentomist-core`).
pub use sentomist_core as core;
/// The long-running mining service (re-export of `sentomist-service`).
pub use sentomist_service as service;
/// Trace anatomization (re-export of `sentomist-trace`).
pub use sentomist_trace as trace;
/// Persistent trace corpus (re-export of `sentomist-tracestore`).
pub use sentomist_tracestore as tracestore;
