//! `sentomist_loadgen` — seeded, reproducible load generation for
//! `sentomistd`, in the style of scalability-suite rps ramps.
//!
//! Two modes:
//!
//! * **Single-shot** (`--once`): send one request and write the raw
//!   response payload to stdout (or `--out FILE`) — the mode the CI
//!   smoke job uses to `cmp` a daemon mine against offline `sentomist
//!   trace mine` output. `--shutdown` is the one-frame clean-stop.
//! * **Ramp** (default): an open-loop rps ramp
//!   (`--initial-rps/--increment-rps/--target-rps/--duration-per-step`)
//!   that schedules requests at fixed spacing regardless of completions
//!   (so latency includes coordinated-omission-free queueing delay,
//!   measured from each request's *scheduled* send time), and writes
//!   `BENCH_service.json`: p50/p99 latency plus ok/error/shed counts
//!   per step, and the max sustainable rps — the highest step the
//!   daemon absorbed without shedding or erroring.

use sentomist::core::supervise::splitmix64;
use sentomist::service::{request, Client, Request, Response};
use serde::Serialize;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> &'static str {
    "sentomist_loadgen — load generator for sentomistd

USAGE:
    sentomist_loadgen --addr HOST:PORT [--once | ramp options] [job options]

JOB (what each request asks for):
    --job ping                     liveness round-trip (default)
    --job sleep --ms MS            hold a worker MS milliseconds
    --job mine --store PATH [--quarantine]
    --job lint --app NAME [--fixed]
    --job hunt --case N [--fixed] [--top-k K]
    --job emulate [--case N] [--period MS] [--seconds S] [--nu NU]
    --job stats                    service counters
    --job panic                    poisoned-job probe (answers Error)

SINGLE-SHOT:
    --once                         send one request, write raw response
                                   payload to stdout
    --out FILE                     write the payload to FILE instead
    --shutdown                     send a Shutdown frame and exit

RAMP (open-loop, seeded):
    --initial-rps N                first step's request rate (default 2)
    --increment-rps N              added per step (default 2)
    --target-rps N                 last step's rate (default 10)
    --duration-per-step S          seconds per step (default 2)
    --seed S                       base seed (default 42)
    --bench-out FILE               report path (default BENCH_service.json)

EXIT STATUS (single-shot): 0 ok, 1 error response or wire failure,
3 overloaded (shed). Ramp mode exits 0 and records sheds in the report."
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument `{arg}`"));
        };
        let value = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 1;
                v.clone()
            }
            _ => String::new(),
        };
        flags.insert(name.to_string(), value);
        i += 1;
    }
    Ok(flags)
}

fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
    }
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
    }
}

/// Builds the request for one ramp slot (or the single shot). `seed`
/// varies per slot so seeded jobs exercise distinct, reproducible work.
fn build_request(flags: &HashMap<String, String>, seed: u64) -> Result<Request, String> {
    let job = flags.get("job").map(String::as_str).unwrap_or("ping");
    Ok(match job {
        "ping" => Request::Ping,
        "sleep" => Request::Sleep {
            ms: flag_u64(flags, "ms", 10)?,
        },
        "panic" => Request::Panic,
        "stats" => Request::Stats,
        "mine" => Request::Mine {
            store: flags
                .get("store")
                .filter(|s| !s.is_empty())
                .ok_or("--job mine needs --store PATH")?
                .clone(),
            quarantine: flags.contains_key("quarantine"),
        },
        "lint" => Request::Lint {
            app: flags
                .get("app")
                .filter(|s| !s.is_empty())
                .ok_or("--job lint needs --app NAME")?
                .clone(),
            fixed: flags.contains_key("fixed"),
        },
        "hunt" => Request::Hunt {
            case: flag_u64(flags, "case", 1)?,
            fixed: flags.contains_key("fixed"),
            seed,
            top_k: flag_u64(flags, "top-k", 3)?,
        },
        "emulate" => Request::Emulate {
            case: flags.get("case").cloned().unwrap_or_default(),
            period: flag_u64(flags, "period", 20)? as u32,
            seconds: flag_u64(flags, "seconds", 2)?,
            nu: flag_f64(flags, "nu", 0.05)?,
            seed,
        },
        other => return Err(format!("unknown --job `{other}`")),
    })
}

/// One ramp step's aggregated results.
#[derive(Debug, Clone, Serialize)]
struct StepReport {
    rps: u64,
    requests: u64,
    ok: u64,
    errors: u64,
    shed: u64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchConfig {
    job: String,
    initial_rps: u64,
    increment_rps: u64,
    target_rps: u64,
    duration_per_step_s: u64,
    seed: u64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    config: BenchConfig,
    steps: Vec<StepReport>,
    /// Highest rps step served with zero sheds and zero errors
    /// (0 when even the first step shed).
    max_sustainable_rps: u64,
}

fn percentile(sorted_ms: &[f64], pct: u64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as u64 * pct / 100) as usize;
    sorted_ms[idx]
}

/// One request at its scheduled slot: connect, send, classify. Latency
/// is measured from the *scheduled* time, so queueing delay the daemon
/// imposes under overload is charged to the daemon, not hidden.
fn fire(addr: &str, request: Request, scheduled: Instant) -> (u8, f64) {
    let outcome = request_once(addr, &request);
    let latency_ms = scheduled.elapsed().as_secs_f64() * 1e3;
    (outcome, latency_ms)
}

/// 0 = ok, 1 = error, 2 = shed.
fn request_once(addr: &str, req: &Request) -> u8 {
    match request(addr, req) {
        Ok(Response::Ok(_)) => 0,
        Ok(Response::Error(_)) | Err(_) => 1,
        Ok(Response::Overloaded) => 2,
    }
}

fn run_ramp(addr: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let config = BenchConfig {
        job: flags.get("job").cloned().unwrap_or_else(|| "ping".into()),
        initial_rps: flag_u64(flags, "initial-rps", 2)?.max(1),
        increment_rps: flag_u64(flags, "increment-rps", 2)?.max(1),
        target_rps: flag_u64(flags, "target-rps", 10)?,
        duration_per_step_s: flag_u64(flags, "duration-per-step", 2)?.max(1),
        seed: flag_u64(flags, "seed", 42)?,
    };
    let mut steps = Vec::new();
    let mut slot: u64 = 0;
    let mut rps = config.initial_rps;
    while rps <= config.target_rps {
        let total = rps * config.duration_per_step_s;
        let spacing = Duration::from_nanos(1_000_000_000 / rps);
        let step_start = Instant::now();
        let mut handles = Vec::with_capacity(total as usize);
        for i in 0..total {
            let scheduled = step_start + spacing * (i as u32);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            let request = build_request(flags, splitmix64(config.seed.wrapping_add(slot)))?;
            slot += 1;
            let addr = addr.to_string();
            handles.push(std::thread::spawn(move || fire(&addr, request, scheduled)));
        }
        let mut ok = 0u64;
        let mut errors = 0u64;
        let mut shed = 0u64;
        let mut latencies: Vec<f64> = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.join() {
                Ok((outcome, ms)) => {
                    match outcome {
                        0 => ok += 1,
                        1 => errors += 1,
                        _ => shed += 1,
                    }
                    latencies.push(ms);
                }
                Err(_) => errors += 1,
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let step = StepReport {
            rps,
            requests: total,
            ok,
            errors,
            shed,
            p50_ms: percentile(&latencies, 50),
            p99_ms: percentile(&latencies, 99),
            max_ms: latencies.last().copied().unwrap_or(0.0),
        };
        eprintln!(
            "step rps={} requests={} ok={} errors={} shed={} p50={:.2}ms p99={:.2}ms",
            step.rps, step.requests, step.ok, step.errors, step.shed, step.p50_ms, step.p99_ms
        );
        steps.push(step);
        rps += config.increment_rps;
    }
    let max_sustainable_rps = steps
        .iter()
        .filter(|s| s.shed == 0 && s.errors == 0)
        .map(|s| s.rps)
        .max()
        .unwrap_or(0);
    let report = BenchReport {
        config,
        steps,
        max_sustainable_rps,
    };
    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serializing report: {e}"))?;
    let out = flags
        .get("bench-out")
        .filter(|s| !s.is_empty())
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".into());
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {out} (max sustainable rps: {max_sustainable_rps})");
    Ok(())
}

fn run_once(addr: &str, flags: &HashMap<String, String>) -> Result<u8, String> {
    let request = build_request(flags, flag_u64(flags, "seed", 42)?)?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    match client.request(&request).map_err(|e| e.to_string())? {
        Response::Ok(payload) => {
            match flags.get("out").filter(|s| !s.is_empty()) {
                Some(path) => {
                    std::fs::write(path, &payload).map_err(|e| format!("writing {path}: {e}"))?
                }
                None => {
                    use std::io::Write as _;
                    std::io::stdout()
                        .write_all(&payload)
                        .and_then(|()| std::io::stdout().flush())
                        .map_err(|e| format!("writing stdout: {e}"))?;
                }
            }
            Ok(0)
        }
        Response::Error(message) => {
            eprintln!("error response: {message}");
            Ok(1)
        }
        Response::Overloaded => {
            eprintln!("overloaded: job shed by admission control");
            Ok(3)
        }
    }
}

fn run(args: &[String]) -> Result<u8, String> {
    let flags = parse_flags(args)?;
    if flags.contains_key("help") {
        println!("{}", usage());
        return Ok(0);
    }
    let addr = flags
        .get("addr")
        .filter(|s| !s.is_empty())
        .ok_or("missing --addr HOST:PORT")?
        .clone();
    if flags.contains_key("shutdown") {
        return match request(addr.as_str(), &Request::Shutdown).map_err(|e| e.to_string())? {
            Response::Ok(_) => {
                eprintln!("daemon acknowledged shutdown");
                Ok(0)
            }
            other => Err(format!("unexpected shutdown response: {other:?}")),
        };
    }
    if flags.contains_key("once") {
        run_once(&addr, &flags)
    } else {
        run_ramp(&addr, &flags).map(|()| 0)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            ExitCode::FAILURE
        }
    }
}
