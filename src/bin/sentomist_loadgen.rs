//! `sentomist_loadgen` — seeded, reproducible load generation for
//! `sentomistd`, in the style of scalability-suite rps ramps.
//!
//! Three modes:
//!
//! * **Single-shot** (`--once`): send one request and write the raw
//!   response payload to stdout (or `--out FILE`) — the mode the CI
//!   smoke job uses to `cmp` a daemon mine against offline `sentomist
//!   trace mine` output. `--shutdown` is the one-frame clean-stop.
//!   Every failure class has its own documented exit code and a
//!   `failure class:` line on stderr.
//! * **Ramp** (default): an open-loop rps ramp
//!   (`--initial-rps/--increment-rps/--target-rps/--duration-per-step`)
//!   that schedules requests at fixed spacing regardless of completions
//!   (so latency includes coordinated-omission-free queueing delay,
//!   measured from each request's *scheduled* send time), and writes
//!   `BENCH_service.json`: p50/p99 latency plus ok/error/shed counts
//!   per step, and the max sustainable rps — the highest step the
//!   daemon absorbed without shedding or erroring.
//! * **Chaos** (`--chaos SEED`, composes with both): start an
//!   in-process seeded TCP fault proxy in front of the daemon and
//!   route every request through it. Faults (mid-frame disconnects,
//!   split writes, slow-loris stalls, truncations, single-byte
//!   corruption) hit a `--chaos-rate` fraction of connections, each
//!   replayable from the seed. Requests run through the deterministic
//!   retry policy (`--retries/--retry-backoff-ms`) — only idempotent
//!   requests are ever replayed — and retry/fault counters land in the
//!   report and on stderr.

use sentomist::core::supervise::splitmix64;
use sentomist::service::{
    request_with_retry, ChaosProxy, Client, ClientConfig, ClientError, FaultPlan, ProxyStats,
    Request, Response, RetryPolicy, RetryStats, WireFailure,
};
use serde::Serialize;
use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> &'static str {
    "sentomist_loadgen — load generator for sentomistd

USAGE:
    sentomist_loadgen --addr HOST:PORT [--once | ramp options] [job options]

JOB (what each request asks for):
    --job ping                     liveness round-trip (default)
    --job sleep --ms MS            hold a worker MS milliseconds
    --job mine --store PATH [--quarantine]
    --job lint --app NAME [--fixed]
    --job hunt --case N [--fixed] [--top-k K]
    --job emulate [--case N] [--period MS] [--seconds S] [--nu NU]
    --job stats                    service counters
    --job panic                    poisoned-job probe (answers Error)

SINGLE-SHOT:
    --once                         send one request, write raw response
                                   payload to stdout
    --out FILE                     write the payload to FILE instead
    --shutdown                     send a Shutdown frame and exit

RAMP (open-loop, seeded):
    --initial-rps N                first step's request rate (default 2)
    --increment-rps N              added per step (default 2)
    --target-rps N                 last step's rate (default 10)
    --duration-per-step S          seconds per step (default 2)
    --seed S                       base seed (default 42)
    --bench-out FILE               report path (default BENCH_service.json)

WIRE (deadlines, retries, chaos):
    --connect-timeout-ms MS        TCP connect deadline (default 2000)
    --read-timeout-ms MS           per-response-frame deadline (default 30000)
    --write-timeout-ms MS          per-write deadline (default 10000)
    --retries N                    retry budget for idempotent requests
                                   (default 0; 8 under --chaos)
    --retry-backoff-ms MS          deterministic backoff base (default 10)
    --chaos SEED                   start an in-process fault proxy in
                                   front of --addr and route through it
    --chaos-rate R                 fraction of connections faulted
                                   (default 0.25)

EXIT STATUS (single-shot / shutdown):
    0  ok — the response payload was written
    1  the daemon ran the job and answered Error
    2  connection refused / connect failure (request never sent)
    3  overloaded — the daemon shed the job with a typed frame
    4  wire/protocol failure — corrupt, truncated, stalled or rejected
       stream (after exhausting any retry budget)
The failure class is also printed to stderr as `failure class: ...`.
Ramp mode exits 0 and records sheds/errors/retries in the report."
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument `{arg}`"));
        };
        let value = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 1;
                v.clone()
            }
            _ => String::new(),
        };
        flags.insert(name.to_string(), value);
        i += 1;
    }
    Ok(flags)
}

fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
    }
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
    }
}

/// Builds the request for one ramp slot (or the single shot). `seed`
/// varies per slot so seeded jobs exercise distinct, reproducible work.
fn build_request(flags: &HashMap<String, String>, seed: u64) -> Result<Request, String> {
    let job = flags.get("job").map(String::as_str).unwrap_or("ping");
    Ok(match job {
        "ping" => Request::Ping,
        "sleep" => Request::Sleep {
            ms: flag_u64(flags, "ms", 10)?,
        },
        "panic" => Request::Panic,
        "stats" => Request::Stats,
        "mine" => Request::Mine {
            store: flags
                .get("store")
                .filter(|s| !s.is_empty())
                .ok_or("--job mine needs --store PATH")?
                .clone(),
            quarantine: flags.contains_key("quarantine"),
        },
        "lint" => Request::Lint {
            app: flags
                .get("app")
                .filter(|s| !s.is_empty())
                .ok_or("--job lint needs --app NAME")?
                .clone(),
            fixed: flags.contains_key("fixed"),
        },
        "hunt" => Request::Hunt {
            case: flag_u64(flags, "case", 1)?,
            fixed: flags.contains_key("fixed"),
            seed,
            top_k: flag_u64(flags, "top-k", 3)?,
        },
        "emulate" => Request::Emulate {
            case: flags.get("case").cloned().unwrap_or_default(),
            period: flag_u64(flags, "period", 20)? as u32,
            seconds: flag_u64(flags, "seconds", 2)?,
            nu: flag_f64(flags, "nu", 0.05)?,
            seed,
        },
        other => return Err(format!("unknown --job `{other}`")),
    })
}

/// Everything about how requests reach the daemon: deadlines, retry
/// policy, and the optional chaos proxy in the path.
struct WirePlan {
    /// Where requests actually go (the proxy when chaos is on).
    addr: String,
    client: ClientConfig,
    policy: RetryPolicy,
    proxy: Option<ChaosProxy>,
    chaos_seed: Option<u64>,
    chaos_rate: f64,
}

impl WirePlan {
    fn from_flags(addr: &str, flags: &HashMap<String, String>) -> Result<WirePlan, String> {
        let chaos_seed = match flags.get("chaos") {
            None => None,
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| format!("--chaos wants a seed, got `{v}`"))?,
            ),
        };
        let chaos_rate = flag_f64(flags, "chaos-rate", 0.25)?;
        let connect_ms = flag_u64(flags, "connect-timeout-ms", 2_000)?;
        let read_ms = flag_u64(flags, "read-timeout-ms", 30_000)?;
        let write_ms = flag_u64(flags, "write-timeout-ms", 10_000)?;
        let client = ClientConfig {
            connect_timeout: (connect_ms > 0).then(|| Duration::from_millis(connect_ms)),
            read_timeout: (read_ms > 0).then(|| Duration::from_millis(read_ms)),
            write_timeout: (write_ms > 0).then(|| Duration::from_millis(write_ms)),
        };
        // Under chaos a connection-level fault is the expected case,
        // not the exception; give the retry loop room by default.
        let default_retries = if chaos_seed.is_some() { 8 } else { 0 };
        let policy = RetryPolicy {
            max_retries: flag_u64(flags, "retries", default_retries)? as u32,
            backoff_base_ms: flag_u64(flags, "retry-backoff-ms", 10)?,
            seed: flag_u64(flags, "seed", 42)?,
        };
        let (addr, proxy) = match chaos_seed {
            None => (addr.to_string(), None),
            Some(seed) => {
                let upstream = resolve(addr)?;
                let proxy = ChaosProxy::start(upstream, FaultPlan::new(seed, chaos_rate))
                    .map_err(|e| format!("starting chaos proxy: {e}"))?;
                eprintln!(
                    "chaos proxy on {} -> {upstream} (seed {seed}, rate {chaos_rate})",
                    proxy.local_addr()
                );
                (proxy.local_addr().to_string(), Some(proxy))
            }
        };
        Ok(WirePlan {
            addr,
            client,
            policy,
            proxy,
            chaos_seed,
            chaos_rate,
        })
    }

    /// Tears down the proxy (joining its forwarder threads) and
    /// returns its fault counters.
    fn finish(self) -> Option<ProxyStats> {
        self.proxy.map(|proxy| {
            let stats = proxy.stats();
            proxy.shutdown_and_join();
            stats
        })
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("resolving {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolved to nothing"))
}

/// One ramp step's aggregated results. The invariant `requests == ok +
/// errors + shed` holds with wire failures (retry budget exhausted)
/// counted under `errors` and itemized in `wire_failed`.
#[derive(Debug, Clone, Serialize)]
struct StepReport {
    rps: u64,
    requests: u64,
    ok: u64,
    errors: u64,
    shed: u64,
    /// Requests that exhausted their retry budget on the wire (a
    /// subset of `errors`).
    wire_failed: u64,
    /// Retries performed across the step's requests.
    retries: u64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchConfig {
    job: String,
    initial_rps: u64,
    increment_rps: u64,
    target_rps: u64,
    duration_per_step_s: u64,
    seed: u64,
}

/// Wire-level accounting for the whole run: what the retry layer saw,
/// and (under `--chaos`) what the proxy actually injected.
#[derive(Debug, Clone, Copy, Default, Serialize)]
struct WireReport {
    chaos: bool,
    chaos_seed: u64,
    chaos_rate: f64,
    retries: u64,
    connect_failures: u64,
    wire_failures: u64,
    rejects: u64,
    proxy_connections: u64,
    proxy_faulted_connections: u64,
    proxy_disconnects: u64,
    proxy_splits: u64,
    proxy_stalls: u64,
    proxy_truncations: u64,
    proxy_corruptions: u64,
}

impl WireReport {
    fn absorb(&mut self, stats: &RetryStats) {
        self.retries += u64::from(stats.retries);
        self.connect_failures += u64::from(stats.connect_failures);
        self.wire_failures += u64::from(stats.wire_failures);
        self.rejects += u64::from(stats.rejects);
    }

    fn absorb_proxy(&mut self, stats: &ProxyStats) {
        self.proxy_connections = stats.connections;
        self.proxy_faulted_connections = stats.faulted_connections;
        self.proxy_disconnects = stats.disconnects;
        self.proxy_splits = stats.splits;
        self.proxy_stalls = stats.stalls;
        self.proxy_truncations = stats.truncations;
        self.proxy_corruptions = stats.corruptions;
    }
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    config: BenchConfig,
    steps: Vec<StepReport>,
    /// Highest rps step served with zero sheds and zero errors
    /// (0 when even the first step shed).
    max_sustainable_rps: u64,
    wire: WireReport,
}

fn percentile(sorted_ms: &[f64], pct: u64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as u64 * pct / 100) as usize;
    sorted_ms[idx]
}

/// Outcome classes for one scheduled request.
const OUT_OK: u8 = 0;
const OUT_ERROR: u8 = 1;
const OUT_SHED: u8 = 2;
const OUT_WIRE: u8 = 3;

/// One request at its scheduled slot: connect (through the retry
/// layer), send, classify. Latency is measured from the *scheduled*
/// time, so queueing delay the daemon imposes under overload is
/// charged to the daemon, not hidden.
fn fire(
    addr: &str,
    request: Request,
    config: ClientConfig,
    policy: RetryPolicy,
    scheduled: Instant,
) -> (u8, f64, RetryStats) {
    let (outcome, stats) = match request_with_retry(addr, &request, &config, &policy) {
        Ok((Response::Ok(_), stats)) => (OUT_OK, stats),
        Ok((Response::Error(_), stats)) => (OUT_ERROR, stats),
        Ok((Response::Overloaded, stats)) => (OUT_SHED, stats),
        // request_with_retry never yields Ok(Rejected); keep the class
        // total anyway.
        Ok((Response::Rejected(_), stats)) => (OUT_WIRE, stats),
        Err(e) => (
            OUT_WIRE,
            RetryStats {
                attempts: e.attempts,
                retries: e.attempts.saturating_sub(1),
                ..RetryStats::default()
            },
        ),
    };
    let latency_ms = scheduled.elapsed().as_secs_f64() * 1e3;
    (outcome, latency_ms, stats)
}

fn run_ramp(wire: WirePlan, flags: &HashMap<String, String>) -> Result<(), String> {
    let config = BenchConfig {
        job: flags.get("job").cloned().unwrap_or_else(|| "ping".into()),
        initial_rps: flag_u64(flags, "initial-rps", 2)?.max(1),
        increment_rps: flag_u64(flags, "increment-rps", 2)?.max(1),
        target_rps: flag_u64(flags, "target-rps", 10)?,
        duration_per_step_s: flag_u64(flags, "duration-per-step", 2)?.max(1),
        seed: flag_u64(flags, "seed", 42)?,
    };
    let mut wire_report = WireReport {
        chaos: wire.chaos_seed.is_some(),
        chaos_seed: wire.chaos_seed.unwrap_or(0),
        chaos_rate: if wire.chaos_seed.is_some() {
            wire.chaos_rate
        } else {
            0.0
        },
        ..WireReport::default()
    };
    let mut steps = Vec::new();
    let mut slot: u64 = 0;
    let mut rps = config.initial_rps;
    while rps <= config.target_rps {
        let total = rps * config.duration_per_step_s;
        let spacing = Duration::from_nanos(1_000_000_000 / rps);
        let step_start = Instant::now();
        let mut handles = Vec::with_capacity(total as usize);
        for i in 0..total {
            let scheduled = step_start + spacing * (i as u32);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            let slot_seed = splitmix64(config.seed.wrapping_add(slot));
            let request = build_request(flags, slot_seed)?;
            slot += 1;
            let addr = wire.addr.clone();
            let client = wire.client;
            // Per-slot backoff seed: every request's retry schedule is
            // distinct but fully determined by (base seed, slot).
            let policy = RetryPolicy {
                seed: slot_seed,
                ..wire.policy
            };
            handles.push(std::thread::spawn(move || {
                fire(&addr, request, client, policy, scheduled)
            }));
        }
        let mut ok = 0u64;
        let mut errors = 0u64;
        let mut shed = 0u64;
        let mut wire_failed = 0u64;
        let mut retries = 0u64;
        let mut latencies: Vec<f64> = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.join() {
                Ok((outcome, ms, stats)) => {
                    match outcome {
                        OUT_OK => ok += 1,
                        OUT_SHED => shed += 1,
                        OUT_WIRE => {
                            errors += 1;
                            wire_failed += 1;
                        }
                        _ => errors += 1,
                    }
                    retries += u64::from(stats.retries);
                    wire_report.absorb(&stats);
                    latencies.push(ms);
                }
                Err(_) => errors += 1,
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let step = StepReport {
            rps,
            requests: total,
            ok,
            errors,
            shed,
            wire_failed,
            retries,
            p50_ms: percentile(&latencies, 50),
            p99_ms: percentile(&latencies, 99),
            max_ms: latencies.last().copied().unwrap_or(0.0),
        };
        eprintln!(
            "step rps={} requests={} ok={} errors={} shed={} retries={} p50={:.2}ms p99={:.2}ms",
            step.rps,
            step.requests,
            step.ok,
            step.errors,
            step.shed,
            step.retries,
            step.p50_ms,
            step.p99_ms
        );
        steps.push(step);
        rps += config.increment_rps;
    }
    let max_sustainable_rps = steps
        .iter()
        .filter(|s| s.shed == 0 && s.errors == 0)
        .map(|s| s.rps)
        .max()
        .unwrap_or(0);
    if let Some(proxy_stats) = wire.finish() {
        wire_report.absorb_proxy(&proxy_stats);
        eprintln!(
            "chaos proxy: {} connections, {} faulted ({} disconnects, {} splits, {} stalls, {} truncations, {} corruptions)",
            proxy_stats.connections,
            proxy_stats.faulted_connections,
            proxy_stats.disconnects,
            proxy_stats.splits,
            proxy_stats.stalls,
            proxy_stats.truncations,
            proxy_stats.corruptions
        );
    }
    let report = BenchReport {
        config,
        steps,
        max_sustainable_rps,
        wire: wire_report,
    };
    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serializing report: {e}"))?;
    let out = flags
        .get("bench-out")
        .filter(|s| !s.is_empty())
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".into());
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {out} (max sustainable rps: {max_sustainable_rps})");
    Ok(())
}

/// Maps a terminal failure to its documented exit code and prints the
/// failure class to stderr.
fn classify_failure(error: &ClientError) -> u8 {
    match &error.failure {
        WireFailure::Connect(e) => {
            eprintln!(
                "failure class: connect ({e}; after {} attempt(s))",
                error.attempts
            );
            2
        }
        WireFailure::Wire(e) => {
            eprintln!(
                "failure class: wire/protocol ({e}; after {} attempt(s))",
                error.attempts
            );
            4
        }
        WireFailure::Rejected(reason) => {
            eprintln!(
                "failure class: wire/protocol (rejected by daemon: {reason}; after {} attempt(s))",
                error.attempts
            );
            4
        }
    }
}

fn run_once(wire: &WirePlan, flags: &HashMap<String, String>) -> Result<u8, String> {
    let request = build_request(flags, flag_u64(flags, "seed", 42)?)?;
    let code = match request_with_retry(wire.addr.as_str(), &request, &wire.client, &wire.policy) {
        Ok((Response::Ok(payload), stats)) => {
            if stats.retries > 0 {
                eprintln!("succeeded after {} attempt(s)", stats.attempts);
            }
            match flags.get("out").filter(|s| !s.is_empty()) {
                Some(path) => {
                    std::fs::write(path, &payload).map_err(|e| format!("writing {path}: {e}"))?
                }
                None => {
                    use std::io::Write as _;
                    std::io::stdout()
                        .write_all(&payload)
                        .and_then(|()| std::io::stdout().flush())
                        .map_err(|e| format!("writing stdout: {e}"))?;
                }
            }
            0
        }
        Ok((Response::Error(message), _)) => {
            eprintln!("failure class: error-response ({message})");
            1
        }
        Ok((Response::Overloaded, _)) => {
            eprintln!("failure class: overloaded (job shed by admission control)");
            3
        }
        Ok((Response::Rejected(reason), _)) => {
            eprintln!("failure class: wire/protocol (rejected by daemon: {reason})");
            4
        }
        Err(e) => classify_failure(&e),
    };
    Ok(code)
}

fn run(args: &[String]) -> Result<u8, String> {
    let flags = parse_flags(args)?;
    if flags.contains_key("help") {
        println!("{}", usage());
        return Ok(0);
    }
    let addr = flags
        .get("addr")
        .filter(|s| !s.is_empty())
        .ok_or("missing --addr HOST:PORT")?
        .clone();
    let wire = WirePlan::from_flags(&addr, &flags)?;
    if flags.contains_key("shutdown") {
        // Shutdown is deliberately outside the retry machinery: it is
        // never safe to replay, and it bypasses any chaos proxy so a
        // soak can always stop its daemon deterministically.
        let code = match Client::connect_with(addr.as_str(), wire.client) {
            Err(e) => {
                eprintln!("failure class: connect ({e})");
                2
            }
            Ok(mut client) => match client.request(&Request::Shutdown) {
                Ok(Response::Ok(_)) => {
                    eprintln!("daemon acknowledged shutdown");
                    0
                }
                Ok(other) => return Err(format!("unexpected shutdown response: {other:?}")),
                Err(e) => {
                    eprintln!("failure class: wire/protocol ({e})");
                    4
                }
            },
        };
        wire.finish();
        return Ok(code);
    }
    if flags.contains_key("once") {
        let code = run_once(&wire, &flags);
        wire.finish();
        code
    } else {
        run_ramp(wire, &flags).map(|()| 0)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            ExitCode::FAILURE
        }
    }
}
