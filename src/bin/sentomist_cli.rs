//! The `sentomist` command-line tool: assemble, emulate, trace, mine and
//! localize — the full Figure-3 workflow from a shell.
//!
//! ```text
//! sentomist assemble <app.s>                      check + disassemble
//! sentomist run <app.s> [opts]                    emulate, save a trace
//! sentomist mine <trace.json> --irq N [opts]      rank intervals
//! sentomist localize <trace.json> <app.s> [opts]  implicate instructions
//! sentomist case <1|2|3>                          run a paper case study
//! ```

use sentomist::core::campaign::{RunOutcome, Verdict};
use sentomist::core::{harvest_set, localize_set, Pipeline, SampleIndex};
use sentomist::mlcore::{
    KdeDetector, KfdDetector, KnnDetector, MahalanobisDetector, OneClassSvm, OutlierDetector,
    PcaDetector,
};
use sentomist::tinyvm::{self, devices::NodeConfig, node::Node};
use sentomist::trace::{Recorder, Trace};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

fn usage() -> &'static str {
    "sentomist — transient WSN bug mining (ICDCS 2010 reproduction)

USAGE:
  sentomist assemble <app.s>
      Assemble and print the annotated disassembly.

  sentomist run <app.s> [--cycles N] [--seed S] [--trace FILE]
      Emulate a single node (default 10,000,000 cycles) and write the
      lifecycle trace as JSON (default <app>.trace.json).

  sentomist mine <trace.json> [--irq N] [--detector ocsvm|pca|knn|mahalanobis|kde|kfd]
                 [--nu X] [--top K] [--csv FILE]
      Anatomize the trace into event-handling intervals of interrupt N
      (default 0), rank them, and print the suspicion table; --csv also
      writes the full ranking for external plotting.

  sentomist localize <trace.json> <app.s> [--irq N] [--rank R] [--min-z Z]
      Explain the R-th most suspicious interval (default 1): which
      instructions deviate from the population.

  sentomist profile <trace.json> <app.s>
      Attribute executed instructions and cycles to routines (the
      Avrora-monitor profiling view).

  sentomist case <1|2|3>
      Run one of the paper's case studies end to end.

  sentomist campaign [--case 1|2|3] [--seeds N] [--base-seed S] [--threads T]
                     [--period MS] [--seconds SEC] [--nu X] [--json] [--progress]
      Run a parallel seed-sweep campaign: N independent runs under seeds
      S..S+N, mined in isolation, aggregated by seed. Without --case the
      campaign is the case-I trigger experiment (one run per seed at
      sampling period --period, default 20 ms, --seconds long); with
      --case each seed reruns the full case study. The aggregated output
      (and --json document) is byte-identical for every --threads value.

  sentomist campaign --replay --seed S [same selection flags]
      Re-run one seed of a campaign and print its outcome — the trace
      digest must match the original campaign row bit for bit.
"
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // A flag followed by another flag (or nothing) is boolean:
            // it maps to the empty string and consumes no value.
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 2;
                    v.clone()
                }
                _ => {
                    i += 1;
                    String::new()
                }
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
        None => Ok(default),
    }
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
        None => Ok(default),
    }
}

fn detector_from(flags: &HashMap<String, String>) -> Result<Box<dyn OutlierDetector>, String> {
    let nu = flag_f64(flags, "nu", 0.05)?;
    match flags.get("detector").map(String::as_str).unwrap_or("ocsvm") {
        "ocsvm" => Ok(Box::new(OneClassSvm::with_nu(nu))),
        "pca" => Ok(Box::new(PcaDetector::default())),
        "knn" => Ok(Box::new(KnnDetector::default())),
        "mahalanobis" => Ok(Box::new(MahalanobisDetector::default())),
        "kde" => Ok(Box::new(KdeDetector::default())),
        "kfd" => Ok(Box::new(KfdDetector::default())),
        other => Err(format!("unknown detector `{other}`")),
    }
}

fn load_trace(path: &str) -> Result<Trace, Box<dyn Error>> {
    let data = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&data)?)
}

fn cmd_assemble(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, _) = parse_flags(args);
    let path = pos.first().ok_or("assemble: missing <app.s>")?;
    let src = std::fs::read_to_string(path)?;
    let program = tinyvm::assemble(&src)?;
    println!(
        "; {} — {} instructions, {} tasks, {} data words",
        path,
        program.len(),
        program.tasks.len(),
        program.data_size
    );
    print!("{}", tinyvm::disassemble(&program));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    let path = pos.first().ok_or("run: missing <app.s>")?;
    let cycles = flag_u64(&flags, "cycles", 10_000_000)?;
    let seed = flag_u64(&flags, "seed", 42)?;
    let out = flags
        .get("trace")
        .cloned()
        .unwrap_or_else(|| format!("{path}.trace.json"));
    let src = std::fs::read_to_string(path)?;
    let program = std::sync::Arc::new(tinyvm::assemble(&src)?);
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed,
            ..NodeConfig::default()
        },
    );
    let mut recorder = Recorder::new(program.len());
    node.run(cycles, &mut recorder)?;
    let trace = recorder.into_trace();
    println!(
        "ran {} cycles: {} instructions, {} lifecycle events, {} UART words",
        node.cycle(),
        node.instructions_retired(),
        trace.events.len(),
        node.uart().len()
    );
    std::fs::write(&out, serde_json::to_string(&trace)?)?;
    println!("trace written to {out}");
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    let path = pos.first().ok_or("mine: missing <trace.json>")?;
    let irq = flag_u64(&flags, "irq", 0)? as u8;
    let top = flag_u64(&flags, "top", 10)? as usize;
    let trace = load_trace(path)?;
    let samples = harvest_set(&trace, irq, |seq, _| SampleIndex::Seq(seq))?;
    if samples.is_empty() {
        return Err(format!("no event-handling intervals for irq {irq}").into());
    }
    println!(
        "{} intervals of {} ({}), ranking with {}:",
        samples.len(),
        irq,
        tinyvm::isa::irq::name(irq),
        flags.get("detector").map(String::as_str).unwrap_or("ocsvm"),
    );
    let pipeline = Pipeline::new(detector_from(&flags)?);
    let report = pipeline.rank_set(samples)?;
    print!("{}", report.table(top, 2));
    if let Some(csv_path) = flags.get("csv") {
        std::fs::write(csv_path, report.to_csv())?;
        println!("full ranking written to {csv_path}");
    }
    Ok(())
}

fn cmd_localize(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    let trace_path = pos.first().ok_or("localize: missing <trace.json>")?;
    let app_path = pos.get(1).ok_or("localize: missing <app.s>")?;
    let irq = flag_u64(&flags, "irq", 0)? as u8;
    let rank = flag_u64(&flags, "rank", 1)?.max(1) as usize;
    let min_z = flag_f64(&flags, "min-z", 1.0)?;
    let trace = load_trace(trace_path)?;
    let src = std::fs::read_to_string(app_path)?;
    let program = tinyvm::assemble(&src)?;
    if program.len() != trace.program_len {
        return Err(format!(
            "program has {} instructions but the trace was recorded for {}",
            program.len(),
            trace.program_len
        )
        .into());
    }
    let samples = harvest_set(&trace, irq, |seq, _| SampleIndex::Seq(seq))?;
    let report = Pipeline::new(detector_from(&flags)?).rank_set(samples.clone())?;
    let target = report
        .ranking
        .get(rank - 1)
        .ok_or("rank beyond the number of intervals")?;
    let flagged = samples
        .meta
        .iter()
        .position(|m| m.index == target.index)
        .expect("ranked sample exists");
    println!(
        "interval {} (rank {rank}, score {:.4}): deviating instructions:",
        target.index, target.score
    );
    for hit in localize_set(&samples, flagged, &program, min_z)
        .into_iter()
        .take(12)
    {
        println!(
            "  pc {:>4}  z {:>7.2}  observed {:>7.0}  expected {:>9.1}  {} (line {})",
            hit.pc,
            hit.z_score,
            hit.observed,
            hit.expected,
            hit.routine.as_deref().unwrap_or("?"),
            hit.source_line.unwrap_or(0),
        );
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, _) = parse_flags(args);
    let trace_path = pos.first().ok_or("profile: missing <trace.json>")?;
    let app_path = pos.get(1).ok_or("profile: missing <app.s>")?;
    let trace = load_trace(trace_path)?;
    let src = std::fs::read_to_string(app_path)?;
    let program = tinyvm::assemble(&src)?;
    if program.len() != trace.program_len {
        return Err("program/trace instruction counts disagree".into());
    }
    let profile = sentomist::trace::Profile::of_trace(&trace, &program);
    print!("{}", profile.table());
    Ok(())
}

fn cmd_case(args: &[String]) -> Result<(), Box<dyn Error>> {
    use sentomist::apps::{run_case1, run_case2, run_case3, Case1Config, Case2Config, Case3Config};
    let which = args
        .first()
        .map(String::as_str)
        .ok_or("case: missing <1|2|3>")?;
    let result = match which {
        "1" => run_case1(&Case1Config::default())?,
        "2" => run_case2(&Case2Config::default())?,
        "3" => run_case3(&Case3Config::default())?,
        other => return Err(format!("unknown case `{other}`").into()),
    };
    print!("{}", result.report.table(8, 2));
    println!(
        "\n{} samples; true symptoms at ranks {:?}",
        result.sample_count, result.buggy_ranks
    );
    Ok(())
}

type CampaignJob = Box<dyn Fn(u64) -> Result<RunOutcome, String> + Send + Sync>;
type CampaignConfig = Vec<(String, Value)>;

/// Builds the per-seed job and the JSON `config` block for the selected
/// campaign mode. The block deliberately excludes `--threads`: thread
/// count must not influence the serialized campaign document.
fn campaign_job(
    flags: &HashMap<String, String>,
) -> Result<(CampaignJob, CampaignConfig), Box<dyn Error>> {
    use sentomist::apps::experiments::{case1_job, case2_job, case3_job, trigger_job};
    use sentomist::apps::{Case1Config, Case2Config, Case3Config};
    let entry = |k: &str, v: Value| (k.to_string(), v);
    match flags.get("case").map(String::as_str) {
        None => {
            let period = flag_u64(flags, "period", 20)? as u32;
            let seconds = flag_u64(flags, "seconds", 10)?;
            let nu = flag_f64(flags, "nu", 0.05)?;
            let job = trigger_job(period, seconds, nu)?;
            Ok((
                Box::new(job),
                vec![
                    entry("mode", Value::Str("trigger".into())),
                    entry("period_ms", Serialize::to_value(&period)),
                    entry("run_seconds", Serialize::to_value(&seconds)),
                    entry("nu", Serialize::to_value(&nu)),
                ],
            ))
        }
        Some("1") => Ok((
            Box::new(case1_job(Case1Config::default())),
            vec![entry("mode", Value::Str("case1".into()))],
        )),
        Some("2") => Ok((
            Box::new(case2_job(Case2Config::default())),
            vec![entry("mode", Value::Str("case2".into()))],
        )),
        Some("3") => Ok((
            Box::new(case3_job(Case3Config::default())),
            vec![entry("mode", Value::Str("case3".into()))],
        )),
        Some(other) => Err(format!("unknown case `{other}`").into()),
    }
}

fn print_outcome(o: &RunOutcome) {
    let verdict = match o.verdict {
        Verdict::Triggered => "triggered",
        Verdict::Clean => "clean",
    };
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
        o.seed,
        o.samples,
        o.symptoms,
        verdict,
        o.buggy_ranks
            .first()
            .map_or_else(|| "-".to_string(), ToString::to_string),
        o.trace_digest,
    );
}

fn cmd_campaign(args: &[String]) -> Result<(), Box<dyn Error>> {
    use sentomist::core::campaign::{replay, run_campaign, CampaignOptions};
    let (_, flags) = parse_flags(args);
    let json = flags.contains_key("json");
    let (job, mut config) = campaign_job(&flags)?;

    if flags.contains_key("replay") {
        let seed = flags
            .get("seed")
            .ok_or("campaign --replay needs --seed S")?
            .parse::<u64>()
            .map_err(|_| "--seed wants a number")?;
        let outcome = replay(seed, job).map_err(|e| format!("seed {seed}: {e}"))?;
        if json {
            let doc = Value::Map(vec![
                (
                    "config".to_string(),
                    Value::Map(std::mem::take(&mut config)),
                ),
                ("outcome".to_string(), Serialize::to_value(&outcome)),
            ]);
            println!("{}", serde_json::to_string_pretty(&doc)?);
        } else {
            println!(
                "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
                "seed", "samples", "symptoms", "verdict", "best rank", "trace digest"
            );
            print_outcome(&outcome);
            println!(
                "\nreplayed in {} ms; the trace digest above must equal the \
                 campaign row's digest for the same seed",
                outcome.wall_time_ms
            );
        }
        return Ok(());
    }

    let n_seeds = flag_u64(&flags, "seeds", 16)?;
    let base_seed = flag_u64(&flags, "base-seed", 1000)?;
    let threads = flag_u64(&flags, "threads", 1)?.max(1) as usize;
    let seeds: Vec<u64> = (0..n_seeds).map(|i| base_seed + i).collect();
    config.push(("seeds".to_string(), Serialize::to_value(&n_seeds)));
    config.push(("base_seed".to_string(), Serialize::to_value(&base_seed)));

    let options = CampaignOptions {
        threads,
        progress: flags.contains_key("progress"),
    };
    let started = std::time::Instant::now();
    let result = run_campaign(&seeds, options, job);
    let elapsed = started.elapsed();

    if json {
        let doc = Value::Map(vec![
            (
                "config".to_string(),
                Value::Map(std::mem::take(&mut config)),
            ),
            (
                "outcomes".to_string(),
                Serialize::to_value(&result.outcomes),
            ),
            (
                "summary".to_string(),
                Serialize::to_value(&result.summary()),
            ),
            ("errors".to_string(), Serialize::to_value(&result.errors)),
        ]);
        println!("{}", serde_json::to_string_pretty(&doc)?);
        return Ok(());
    }

    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
        "seed", "samples", "symptoms", "verdict", "best rank", "trace digest"
    );
    for o in &result.outcomes {
        print_outcome(o);
    }
    for e in &result.errors {
        println!("{:>6} FAILED: {}", e.seed, e.message);
    }
    let s = result.summary();
    println!(
        "\ntrigger rate:  {}/{} runs ({:.0}%)",
        s.triggered,
        s.runs,
        100.0 * s.trigger_rate
    );
    println!(
        "detection:     best symptom in top-1 for {}, top-3 for {}, top-10 for {} \
         of the {} triggered runs",
        s.hits_top1, s.hits_top3, s.hits_top10, s.triggered
    );
    println!(
        "intervals:     {} total ({}..{} per run, mean {:.1})",
        s.total_samples, s.min_samples, s.max_samples, s.mean_samples
    );
    println!(
        "time:          {:.2} s wall on {} thread(s), {:.2} s total job time",
        elapsed.as_secs_f64(),
        threads,
        result.cpu_time_ms() as f64 / 1000.0
    );
    println!("replay a row:  sentomist campaign --replay --seed <seed> [same flags]");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "assemble" => cmd_assemble(rest),
        "run" => cmd_run(rest),
        "mine" => cmd_mine(rest),
        "localize" => cmd_localize(rest),
        "profile" => cmd_profile(rest),
        "case" => cmd_case(rest),
        "campaign" => cmd_campaign(rest),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage()).into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
