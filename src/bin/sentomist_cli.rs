//! The `sentomist` command-line tool: assemble, emulate, trace, mine and
//! localize — the full Figure-3 workflow from a shell.
//!
//! ```text
//! sentomist assemble <app.s>                      check + disassemble
//! sentomist run <app.s> [opts]                    emulate, save a trace
//! sentomist lint <app.s | --app NAME> [--json]    static interleaving analysis
//! sentomist slice <app.s | --app NAME> [--pc N]   backward dependence slice
//! sentomist mine <trace.json> --irq N [opts]      rank intervals
//! sentomist localize <trace.json> <app.s> [opts]  implicate instructions
//! sentomist case <1|2|3>                          run a paper case study
//! sentomist hunt [opts]                           invariant bug-bounty campaign
//! ```

use sentomist::apps::{
    bundled_program, bundled_slice_report, campaign_document, default_slice_seeds, fnv64,
    mine_corpus, slice_document, CorpusMineOptions, Mode, SupervisedTracedJob,
};
use sentomist::core::campaign::{CampaignResult, RunOutcome, Verdict};
use sentomist::core::chaos::ChaosConfig;
use sentomist::core::supervise::{
    run_supervised, RunContext, RunFailure, SeedReport, SupervisorOptions,
};
use sentomist::core::{
    causal_chain, corroborate_with_chain, harvest_set, localize_set, CausalChain, Pipeline,
    SampleIndex,
};
use sentomist::mlcore::{
    KdeDetector, KfdDetector, KnnDetector, MahalanobisDetector, OneClassSvm, OutlierDetector,
    PcaDetector,
};
use sentomist::tinyvm::{self, devices::NodeConfig, node::Node};
use sentomist::trace::{Recorder, Trace};
use sentomist::tracestore::{
    CampaignManifest, CorpusIndex, StoredRunError, TraceReader, TraceStore, TraceWriter,
    MANIFEST_VERSION,
};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::error::Error;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> &'static str {
    "sentomist — transient WSN bug mining (ICDCS 2010 reproduction)

USAGE:
  sentomist assemble <app.s>
      Assemble and print the annotated disassembly.

  sentomist run <app.s> [--cycles N] [--seed S] [--trace FILE]
      Emulate a single node (default 10,000,000 cycles) and write the
      lifecycle trace as JSON (default <app>.trace.json).

  sentomist lint <app.s> [--json]
  sentomist lint --app <oscilloscope|forwarder|ctp> [--fixed] [--json]
      Statically analyze a program (or a bundled case-study app) for
      transient interleaving bugs: CFG + context reachability + shared
      data-object race rules. --json prints the full report for fixture
      pinning; the exit code is 0 regardless of findings.

  sentomist slice <app.s> [--pc N[,N...]] [--json]
  sentomist slice --app <oscilloscope|forwarder|ctp> [--fixed] [--pc N[,N...]] [--json]
      Backward static dependence slice from the seed pcs: every
      instruction whose data or control effects can reach a seed, plus
      the cross-context write→read edges that carry shared state between
      lifecycle contexts the reachability analysis proves can
      interleave. Without --pc the seeds default to the lint warnings'
      flagged pcs — a clean-linting program yields an empty slice.
      --json prints the report document, byte-identical to the mining
      daemon's Slice response for the bundled apps.

  sentomist mine <trace.json> [--irq N] [--detector ocsvm|pca|knn|mahalanobis|kde|kfd]
                 [--nu X] [--top K] [--csv FILE]
                 [--corroborate <app.s>] [--min-z Z] [--causal]
      Anatomize the trace into event-handling intervals of interrupt N
      (default 0), rank them, and print the suspicion table; --csv also
      writes the full ranking for external plotting. With --corroborate,
      localize the top-ranked interval against <app.s> and join each
      implicated instruction with the static analyzer's warnings —
      statically corroborated sites rank first. --causal additionally
      intersects the dynamic interval with the static backward slice
      from the implicated sites and prints the reconstructed causal
      chain: the ordered cross-context hops that published the stale
      state the symptom consumed.

  sentomist localize <trace.json> <app.s> [--irq N] [--rank R] [--min-z Z]
                     [--causal]
      Explain the R-th most suspicious interval (default 1): which
      instructions deviate from the population. With --causal, also
      reconstruct the interval's causal chain and restrict the flat hit
      list to chain members — a strictly smaller, causally ordered
      explanation.

  sentomist profile <trace.json> <app.s>
      Attribute executed instructions and cycles to routines (the
      Avrora-monitor profiling view).

  sentomist case <1|2|3>
      Run one of the paper's case studies end to end.

  sentomist campaign [--case 1|2|3] [--seeds N] [--base-seed S] [--threads T]
                     [--period MS] [--seconds SEC] [--nu X] [--json] [--progress]
                     [--store DIR] [--writers W] [--resume] [--strict]
                     [--max-retries R] [--backoff-ms MS]
                     [--timeout-ms MS] [--timeout-cycles N]
                     [--chaos SEED] [--chaos-rate X] [--stop-after K]
      Run a parallel seed-sweep campaign: N independent runs under seeds
      S..S+N, mined in isolation, aggregated by seed. Without --case the
      campaign is the case-I trigger experiment (one run per seed at
      sampling period --period, default 20 ms, --seconds long); with
      --case each seed reruns the full case study. The aggregated output
      (and --json document) is byte-identical for every --threads value.
      With --store every run's lifecycle traces are persisted to a trace
      corpus under DIR, re-minable later with `trace mine`. --writers W
      fans the runs across W writer shards (DIR/shards/writer-NN/), each
      publishing through its own write-ahead log; the merged index and
      the re-mined document are byte-identical for every W, and
      `trace merge` folds the shards back into a flat corpus.

      Every run is supervised: a panicking run becomes a typed failure
      row, not a dead campaign. --max-retries grants transient failures
      and panics R extra attempts (backoff exponential from --backoff-ms,
      jittered deterministically by seed). --timeout-ms arms a per-run
      wall-clock watchdog; --timeout-cycles caps how many VM cycles a
      budget-aware run may emulate (deterministic, trigger mode only).
      --strict exits nonzero when any run ultimately failed. None of
      these flags influence the serialized document of the runs that
      succeed. --chaos injects deterministic faults (panics, hangs,
      transient errors) from the given chaos seed at --chaos-rate
      (default 0.1) per fault class — the test harness for all of the
      above. --stop-after halts dispatch after K seeds complete,
      simulating a killed campaign.

      With --store, every finished seed is journaled to DIR/journal.jsonl
      as it lands; a campaign that died (or was stopped) resumes with
      --resume [same flags], re-running only the missing seeds. The
      resumed document is byte-identical to an uninterrupted sweep's.

  sentomist campaign --replay --seed S [same selection flags]
      Re-run one seed of a campaign and print its outcome — the trace
      digest must match the original campaign row bit for bit.

  sentomist hunt [--case 1|2|3|all] [--fixed] [--iterations N]
                 [--campaign-seed S] [--threads T] [--top-k K]
                 [--out DIR] [--store DIR] [--json] [--progress]
                 [--strict] [--max-retries R] [--timeout-ms MS]
      Invariant-driven bug-bounty campaign: mutate each selected case
      study's workload timing, interrupt schedule, link conditions and
      app parameters under seeds S..S+N (every scenario a pure function
      of its seed), run the scenarios through the supervised pool, mine
      each run, and check the invariant registry —
      transient_symptom_free, known_buggy_interval_ranks_top_k,
      fixed_variant_has_no_negative_outliers,
      staticlint_dynamic_agreement, mining_determinism,
      causal_chain_contains_bug_site. Violations
      aggregate into BUG_REPORT.md + bug_report.json under --out
      (default .): per-invariant detection rates, violating seeds and a
      copy-pasteable repro line per bug. --fixed hunts the repaired
      variants (a healthy pipeline reports zero violations there).
      With --store, every run's traces are journaled into a corpus
      (targets/<case>-<variant>/) and mining_determinism re-mines from
      the persisted, digest-verified bytes; the report is also saved
      under the store's artifacts/. Both artifacts are byte-identical
      for every --threads value.

      Exit codes: 0 when the hunt ran to completion (violations are the
      report's payload, not an error); with --strict, nonzero when any
      invariant was violated or any run failed — the CI contract, same
      as `campaign --strict`'s nonzero-on-failed-run.

  sentomist hunt --replay --seed S --case <1|2|3> [--fixed] [--top-k K] [--json]
      Re-run one hunt scenario and print its iteration record (with
      --json, exactly the record bug_report.json carries). The record is
      a pure function of the seed: replays reproduce the original
      violation bit for bit on any machine and thread count.

  sentomist trace record <app.s> [--cycles N] [--seed S] [--out FILE.stc]
      Emulate a single node, streaming its lifecycle trace to a compact
      binary .stc file as it runs (default <app>.stc).

  sentomist trace ls <store-dir>
      List the runs of a trace corpus.

  sentomist trace info <file.stc | store-dir> [--salvage]
      Inspect one trace file (streamed: counts, size, event-handling
      intervals per interrupt) or a whole corpus. --salvage recovers the
      checksummed prefix of a damaged .stc file instead of rejecting it,
      reporting recovered and lost chunk/event counts.

  sentomist trace mine <store-dir> [--threads T] [--json] [--progress]
                       [--quarantine]
      Re-mine a stored campaign corpus without re-emulating: decode each
      run's traces (digest-verified), rank them with the campaign's own
      parameters, and print the same aggregated document `campaign`
      printed live — byte-identical, at a fraction of the cost. With
      --quarantine, corrupt or truncated runs are moved to the store's
      quarantine/ directory with a typed reason and the rest still mine.

  sentomist trace quarantine ls <store-dir>
      List the corpus runs set aside by quarantine-and-continue mining,
      with the recorded reason for each.

  sentomist trace fsck <store-dir> [--repair]
      Audit a corpus for crash damage: write-ahead-log entries left
      pending by a died writer, orphaned .tmp files, runs with a torn
      manifest or short trace file, and a stale index. Read-only by
      default; --repair quarantines damaged runs, sweeps temp files,
      rebuilds the index and settles the logs. Exits nonzero when a
      dry run finds damage (the CI contract).

  sentomist trace merge <store-dir>
      Compact a sharded multi-writer corpus: move every shard's runs
      into the top-level runs/ tree, drop the emptied shard skeletons
      and rebuild the merged index. The corpus digest is unchanged.
"
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // A flag followed by another flag (or nothing) is boolean:
            // it maps to the empty string and consumes no value.
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 2;
                    v.clone()
                }
                _ => {
                    i += 1;
                    String::new()
                }
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

/// Rejects flags the subcommand does not define: a typo like
/// `--iteratoins` must print the usage on stderr and exit nonzero, not
/// silently run with the default.
fn reject_unknown_flags(
    command: &str,
    flags: &HashMap<String, String>,
    allowed: &[&str],
) -> Result<(), Box<dyn Error>> {
    let mut unknown: Vec<&str> = flags
        .keys()
        .map(String::as_str)
        .filter(|name| !allowed.contains(name))
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        Some(name) => Err(usage_error(format!("{command}: unknown flag `--{name}`"))),
        None => Ok(()),
    }
}

/// Parses `--pc N[,N...]` into a pc list; absent means "default seeds".
fn flag_pcs(flags: &HashMap<String, String>) -> Result<Vec<u16>, String> {
    let Some(raw) = flags.get("pc") else {
        return Ok(Vec::new());
    };
    if raw.is_empty() {
        return Err("--pc wants a comma-separated pc list".into());
    }
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<u16>()
                .map_err(|_| format!("--pc wants numbers, got `{s}`"))
        })
        .collect()
}

fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
        None => Ok(default),
    }
}

fn flag_opt_u64(flags: &HashMap<String, String>, name: &str) -> Result<Option<u64>, String> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
        None => Ok(None),
    }
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
        None => Ok(default),
    }
}

fn detector_from(flags: &HashMap<String, String>) -> Result<Box<dyn OutlierDetector>, String> {
    let nu = flag_f64(flags, "nu", 0.05)?;
    match flags.get("detector").map(String::as_str).unwrap_or("ocsvm") {
        "ocsvm" => Ok(Box::new(OneClassSvm::with_nu(nu))),
        "pca" => Ok(Box::new(PcaDetector::default())),
        "knn" => Ok(Box::new(KnnDetector::default())),
        "mahalanobis" => Ok(Box::new(MahalanobisDetector::default())),
        "kde" => Ok(Box::new(KdeDetector::default())),
        "kfd" => Ok(Box::new(KfdDetector::default())),
        other => Err(format!("unknown detector `{other}`")),
    }
}

fn load_trace(path: &str) -> Result<Trace, Box<dyn Error>> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("parsing {path}: {e}").into())
}

fn cmd_assemble(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, _) = parse_flags(args);
    let path = pos.first().ok_or("assemble: missing <app.s>")?;
    let src = std::fs::read_to_string(path)?;
    let program = tinyvm::assemble(&src)?;
    println!(
        "; {} — {} instructions, {} tasks, {} data words",
        path,
        program.len(),
        program.tasks.len(),
        program.data_size
    );
    print!("{}", tinyvm::disassemble(&program));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    let path = pos.first().ok_or("run: missing <app.s>")?;
    let cycles = flag_u64(&flags, "cycles", 10_000_000)?;
    let seed = flag_u64(&flags, "seed", 42)?;
    let out = flags
        .get("trace")
        .cloned()
        .unwrap_or_else(|| format!("{path}.trace.json"));
    let src = std::fs::read_to_string(path)?;
    let program = std::sync::Arc::new(tinyvm::assemble(&src)?);
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed,
            ..NodeConfig::default()
        },
    );
    let mut recorder = Recorder::new(program.len());
    node.run(cycles, &mut recorder)?;
    let trace = recorder.into_trace();
    println!(
        "ran {} cycles: {} instructions, {} lifecycle events, {} UART words",
        node.cycle(),
        node.instructions_retired(),
        trace.events.len(),
        node.uart().len()
    );
    std::fs::write(&out, serde_json::to_string(&trace)?)?;
    println!("trace written to {out}");
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    let path = pos.first().ok_or("mine: missing <trace.json>")?;
    let irq = flag_u64(&flags, "irq", 0)? as u8;
    let top = flag_u64(&flags, "top", 10)? as usize;
    let trace = load_trace(path)?;
    let samples = harvest_set(&trace, irq, |seq, _| SampleIndex::Seq(seq))?;
    if samples.is_empty() {
        return Err(format!("no event-handling intervals for irq {irq}").into());
    }
    println!(
        "{} intervals of {} ({}), ranking with {}:",
        samples.len(),
        irq,
        tinyvm::isa::irq::name(irq),
        flags.get("detector").map(String::as_str).unwrap_or("ocsvm"),
    );
    let corroborate_app = flags.get("corroborate").filter(|s| !s.is_empty());
    let pipeline = Pipeline::new(detector_from(&flags)?);
    let report = pipeline.rank_set(samples.clone())?;
    print!("{}", report.table(top, 2));
    if let Some(csv_path) = flags.get("csv") {
        std::fs::write(csv_path, report.to_csv())?;
        println!("full ranking written to {csv_path}");
    }
    let Some(app_path) = corroborate_app else {
        if flags.contains_key("causal") {
            return Err("mine --causal needs --corroborate <app.s>".into());
        }
        return Ok(());
    };
    // Fuse: localize the top-ranked interval and join the implicated
    // instructions against the static analyzer's warnings.
    let min_z = flag_f64(&flags, "min-z", 1.0)?;
    let src = std::fs::read_to_string(app_path).map_err(|e| format!("reading {app_path}: {e}"))?;
    let program = tinyvm::assemble(&src)?;
    if program.len() != trace.program_len {
        return Err(format!(
            "program has {} instructions but the trace was recorded for {}",
            program.len(),
            trace.program_len
        )
        .into());
    }
    let target = report
        .ranking
        .first()
        .ok_or("empty ranking, nothing to corroborate")?;
    let flagged = samples
        .meta
        .iter()
        .position(|m| m.index == target.index)
        .ok_or("ranked sample missing from the harvested set")?;
    let hits = localize_set(&samples, flagged, &program, min_z);
    let lint = sentomist::staticlint::lint(&program);
    let chain = if flags.contains_key("causal") {
        let interval = samples.meta[flagged].interval;
        let seeds: Vec<u16> = hits.iter().map(|h| h.pc).collect();
        causal_chain(&program, &trace, &interval, &seeds, &lint)?
    } else {
        None
    };
    let fused = corroborate_with_chain(&hits, &lint, chain.as_ref());
    println!(
        "\ncorroborating interval {} (score {:.4}) against {} static warning(s):",
        target.index,
        target.score,
        lint.warnings.len()
    );
    for c in fused.iter().take(12) {
        let mut tag = if c.corroborated() {
            c.warning_kinds
                .iter()
                .map(|k| k.slug())
                .collect::<Vec<_>>()
                .join(",")
        } else {
            "-".to_string()
        };
        if c.in_causal_chain {
            tag.push_str("+chain");
        }
        println!(
            "  pc {:>4}  z {:>7.2}  {} (line {})  [{}]",
            c.hit.pc,
            c.hit.z_score,
            c.hit.routine.as_deref().unwrap_or("?"),
            c.hit.source_line.unwrap_or(0),
            tag
        );
    }
    if flags.contains_key("causal") {
        println!();
        match &chain {
            Some(c) => print_chain(c),
            None => println!(
                "no causal chain: no warning-anchored cross-context edge \
                 carried state into this interval"
            ),
        }
    }
    Ok(())
}

/// Renders a reconstructed causal chain: cross-context hops in dynamic
/// order, each with full site evidence.
fn print_chain(chain: &CausalChain) {
    println!(
        "causal chain: {} hop(s), {} executed sliced instruction(s), seeds {:?}",
        chain.hops.len(),
        chain.sliced_executed.len(),
        chain.seeds
    );
    for h in &chain.hops {
        println!(
            "  seg {:>3}: [{}] pc {:>4} {} (line {})  --{}-->  [{}] pc {:>4} {} (line {})",
            h.first_read_segment,
            h.write.context,
            h.write.pc,
            h.write.routine.as_deref().unwrap_or("?"),
            h.write.source_line.unwrap_or(0),
            h.object.as_deref().unwrap_or("?"),
            h.read.context,
            h.read.pc,
            h.read.routine.as_deref().unwrap_or("?"),
            h.read.source_line.unwrap_or(0),
        );
    }
}

/// One of the paper's three bundled case-study programs, by name.
fn cmd_lint(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags("lint", &flags, &["app", "fixed", "json"])?;
    let json = flags.contains_key("json");
    let program = match flags.get("app") {
        Some(name) => bundled_program(name, flags.contains_key("fixed"))?,
        None => {
            let path = pos.first().ok_or("lint: missing <app.s> (or --app NAME)")?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            std::sync::Arc::new(tinyvm::assemble(&src)?)
        }
    };
    let report = sentomist::staticlint::lint(&program);
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        print!("{}", report.table());
    }
    Ok(())
}

/// Renders a slice report as a human table; the `--json` twin is the
/// serialized document itself.
fn print_slice_report(report: &sentomist::staticlint::SliceReport) {
    if report.seeds.is_empty() {
        println!("no slice seeds: the program lints clean and no --pc was given");
        return;
    }
    println!(
        "backward slice from {:?}: {} of {} instruction(s), {} cross-context edge(s)",
        report.seeds, report.stats.sliced, report.stats.instructions, report.stats.cross_edges
    );
    for i in &report.instructions {
        println!(
            "  pc {:>4}  {} (line {})",
            i.pc,
            i.routine.as_deref().unwrap_or("?"),
            i.source_line.unwrap_or(0)
        );
    }
    for e in &report.cross_edges {
        println!(
            "  edge: {} pc {} ({}) --{}--> {} pc {} ({})",
            e.writer_context,
            e.write_pc,
            e.write_routine.as_deref().unwrap_or("?"),
            e.object.as_deref().unwrap_or("?"),
            e.reader_context,
            e.read_pc,
            e.read_routine.as_deref().unwrap_or("?"),
        );
    }
}

/// `sentomist slice`: the static half of causal-chain reconstruction as
/// a standalone command. For bundled apps the report comes from
/// `apps::jobs::slice_document`'s builder — the exact call the mining
/// daemon answers Slice requests with, so `--app --json` output and a
/// daemon response are byte-identical by construction.
fn cmd_slice(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags("slice", &flags, &["app", "fixed", "json", "pc"])?;
    let json = flags.contains_key("json");
    let pcs = flag_pcs(&flags)?;
    if let Some(name) = flags.get("app") {
        if json {
            print!(
                "{}",
                slice_document(name, flags.contains_key("fixed"), &pcs)?
            );
        } else {
            print_slice_report(&bundled_slice_report(
                name,
                flags.contains_key("fixed"),
                &pcs,
            )?);
        }
        return Ok(());
    }
    let path = pos
        .first()
        .ok_or("slice: missing <app.s> (or --app NAME)")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let program = tinyvm::assemble(&src)?;
    let seeds = if pcs.is_empty() {
        default_slice_seeds(&program)
    } else {
        pcs
    };
    let report = if seeds.is_empty() {
        sentomist::staticlint::SliceReport {
            seeds,
            instructions: Vec::new(),
            cross_edges: Vec::new(),
            stats: sentomist::staticlint::SliceStats {
                instructions: program.len(),
                sliced: 0,
                cross_edges: 0,
            },
        }
    } else {
        sentomist::staticlint::slice_report(&program, &seeds)?
    };
    if json {
        let mut doc = serde_json::to_string_pretty(&report)?;
        doc.push('\n');
        print!("{doc}");
    } else {
        print_slice_report(&report);
    }
    Ok(())
}

fn cmd_localize(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    let trace_path = pos.first().ok_or("localize: missing <trace.json>")?;
    let app_path = pos.get(1).ok_or("localize: missing <app.s>")?;
    let irq = flag_u64(&flags, "irq", 0)? as u8;
    let rank = flag_u64(&flags, "rank", 1)?.max(1) as usize;
    let min_z = flag_f64(&flags, "min-z", 1.0)?;
    let trace = load_trace(trace_path)?;
    let src = std::fs::read_to_string(app_path)?;
    let program = tinyvm::assemble(&src)?;
    if program.len() != trace.program_len {
        return Err(format!(
            "program has {} instructions but the trace was recorded for {}",
            program.len(),
            trace.program_len
        )
        .into());
    }
    let samples = harvest_set(&trace, irq, |seq, _| SampleIndex::Seq(seq))?;
    let report = Pipeline::new(detector_from(&flags)?).rank_set(samples.clone())?;
    let target = report
        .ranking
        .get(rank - 1)
        .ok_or("rank beyond the number of intervals")?;
    let flagged = samples
        .meta
        .iter()
        .position(|m| m.index == target.index)
        .ok_or("ranked sample missing from the harvested set")?;
    let hits = localize_set(&samples, flagged, &program, min_z);
    let chain = if flags.contains_key("causal") {
        let lint = sentomist::staticlint::lint(&program);
        let interval = samples.meta[flagged].interval;
        let seeds: Vec<u16> = hits.iter().map(|h| h.pc).collect();
        causal_chain(&program, &trace, &interval, &seeds, &lint)?
    } else {
        None
    };
    // With a chain, restrict the flat hit list to chain members: the
    // causally connected subset is a strictly smaller explanation than
    // the full deviation ranking.
    let shown: Vec<_> = match &chain {
        Some(c) => hits.iter().filter(|h| c.contains(h.pc)).collect(),
        None => hits.iter().collect(),
    };
    println!(
        "interval {} (rank {rank}, score {:.4}): deviating instructions{}:",
        target.index,
        target.score,
        if chain.is_some() {
            format!(" ({} of {} on the causal chain)", shown.len(), hits.len())
        } else {
            String::new()
        }
    );
    for hit in shown.iter().take(12) {
        println!(
            "  pc {:>4}  z {:>7.2}  observed {:>7.0}  expected {:>9.1}  {} (line {})",
            hit.pc,
            hit.z_score,
            hit.observed,
            hit.expected,
            hit.routine.as_deref().unwrap_or("?"),
            hit.source_line.unwrap_or(0),
        );
    }
    if flags.contains_key("causal") {
        println!();
        match &chain {
            Some(c) => print_chain(c),
            None => println!(
                "no causal chain: no warning-anchored cross-context edge \
                 carried state into this interval"
            ),
        }
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, _) = parse_flags(args);
    let trace_path = pos.first().ok_or("profile: missing <trace.json>")?;
    let app_path = pos.get(1).ok_or("profile: missing <app.s>")?;
    let trace = load_trace(trace_path)?;
    let src = std::fs::read_to_string(app_path)?;
    let program = tinyvm::assemble(&src)?;
    if program.len() != trace.program_len {
        return Err("program/trace instruction counts disagree".into());
    }
    let profile = sentomist::trace::Profile::of_trace(&trace, &program);
    print!("{}", profile.table());
    Ok(())
}

fn cmd_case(args: &[String]) -> Result<(), Box<dyn Error>> {
    use sentomist::apps::{run_case1, run_case2, run_case3, Case1Config, Case2Config, Case3Config};
    let which = args
        .first()
        .map(String::as_str)
        .ok_or("case: missing <1|2|3>")?;
    let result = match which {
        "1" => run_case1(&Case1Config::default())?,
        "2" => run_case2(&Case2Config::default())?,
        "3" => run_case3(&Case3Config::default())?,
        other => return Err(format!("unknown case `{other}`").into()),
    };
    print!("{}", result.report.table(8, 2));
    println!(
        "\n{} samples; true symptoms at ranks {:?}",
        result.sample_count, result.buggy_ranks
    );
    Ok(())
}

type SupervisedJob = Box<dyn Fn(&RunContext) -> Result<RunOutcome, RunFailure> + Send + Sync>;

/// Resolves the campaign mode from command-line flags. The mode logic
/// itself lives in `apps::jobs` so the mining daemon resolves the exact
/// same modes.
fn campaign_mode(flags: &HashMap<String, String>) -> Result<Mode, Box<dyn Error>> {
    Ok(Mode::resolve(
        flags.get("case").map(String::as_str),
        flag_u64(flags, "period", 20)? as u32,
        flag_u64(flags, "seconds", 10)?,
        flag_f64(flags, "nu", 0.05)?,
    )?)
}

fn print_outcome(o: &RunOutcome) {
    let verdict = match o.verdict {
        Verdict::Triggered => "triggered",
        Verdict::Clean => "clean",
    };
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
        o.seed,
        o.samples,
        o.symptoms,
        verdict,
        o.buggy_ranks
            .first()
            .map_or_else(|| "-".to_string(), ToString::to_string),
        o.trace_digest,
    );
}

fn print_campaign_table(result: &CampaignResult) {
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
        "seed", "samples", "symptoms", "verdict", "best rank", "trace digest"
    );
    for o in &result.outcomes {
        print_outcome(o);
    }
    for e in &result.errors {
        println!(
            "{:>6} FAILED [{}, {} attempt{}]: {}",
            e.seed,
            e.kind.as_str(),
            e.attempts,
            if e.attempts == 1 { "" } else { "s" },
            e.message
        );
    }
    let s = result.summary();
    println!(
        "\ntrigger rate:  {}/{} runs ({:.0}%)",
        s.triggered,
        s.runs,
        100.0 * s.trigger_rate
    );
    println!(
        "detection:     best symptom in top-1 for {}, top-3 for {}, top-10 for {} \
         of the {} triggered runs",
        s.hits_top1, s.hits_top3, s.hits_top10, s.triggered
    );
    println!(
        "intervals:     {} total ({}..{} per run, mean {:.1})",
        s.total_samples, s.min_samples, s.max_samples, s.mean_samples
    );
    if s.failed > 0 {
        println!(
            "failures:      {} of {} run(s) failed ({} panic, {} timeout, \
             {} attempts spent, {:.0}% failure rate)",
            s.failed,
            s.runs + s.failed,
            s.panicked,
            s.timed_out,
            s.failed_attempts,
            100.0 * s.failure_rate
        );
    }
}

fn cmd_campaign(args: &[String]) -> Result<(), Box<dyn Error>> {
    use sentomist::core::campaign::replay;
    let (_, flags) = parse_flags(args);
    let json = flags.contains_key("json");
    let mode = campaign_mode(&flags)?;
    let mut config = mode.config_entries();

    if flags.contains_key("replay") {
        let seed = flags
            .get("seed")
            .ok_or("campaign --replay needs --seed S")?
            .parse::<u64>()
            .map_err(|_| "--seed wants a number")?;
        let outcome = replay(seed, mode.job()?).map_err(|e| format!("seed {seed}: {e}"))?;
        if json {
            let doc = Value::Map(vec![
                (
                    "config".to_string(),
                    Value::Map(std::mem::take(&mut config)),
                ),
                ("outcome".to_string(), Serialize::to_value(&outcome)),
            ]);
            println!("{}", serde_json::to_string_pretty(&doc)?);
        } else {
            println!(
                "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
                "seed", "samples", "symptoms", "verdict", "best rank", "trace digest"
            );
            print_outcome(&outcome);
            println!(
                "\nreplayed in {} ms; the trace digest above must equal the \
                 campaign row's digest for the same seed",
                outcome.wall_time_ms
            );
        }
        return Ok(());
    }

    let n_seeds = flag_u64(&flags, "seeds", 16)?;
    let base_seed = flag_u64(&flags, "base-seed", 1000)?;
    let threads = flag_u64(&flags, "threads", 1)?.max(1) as usize;
    let seeds: Vec<u64> = (0..n_seeds).map(|i| base_seed + i).collect();
    config.push(("seeds".to_string(), Serialize::to_value(&n_seeds)));
    config.push(("base_seed".to_string(), Serialize::to_value(&base_seed)));

    // Supervision knobs. Deliberately excluded from the config block:
    // like --threads, they must never influence the serialized document
    // of the runs that succeed.
    let strict = flags.contains_key("strict");
    let resume = flags.contains_key("resume");
    // Like --threads, --writers is a topology knob: it decides which
    // shard a run lands in, never what the run contains, so the merged
    // index and the re-mined document are byte-identical for every W.
    let writers = flag_u64(&flags, "writers", 1)?.max(1);
    let sup = SupervisorOptions {
        threads,
        progress: flags.contains_key("progress"),
        max_retries: flag_u64(&flags, "max-retries", 0)? as u32,
        timeout: flag_opt_u64(&flags, "timeout-ms")?.map(std::time::Duration::from_millis),
        cycle_budget: flag_opt_u64(&flags, "timeout-cycles")?,
        backoff_base_ms: flag_u64(&flags, "backoff-ms", 25)?,
        stop_after: flag_opt_u64(&flags, "stop-after")?.map(|k| k as usize),
    };
    let chaos = match flag_opt_u64(&flags, "chaos")? {
        Some(seed) => Some(ChaosConfig::uniform(
            seed,
            flag_f64(&flags, "chaos-rate", 0.1)?,
        )),
        None => None,
    };

    let store = match flags.get("store").filter(|s| !s.is_empty()) {
        Some(dir) if resume => Some(TraceStore::open(dir)?),
        Some(dir) => Some(TraceStore::create(dir)?),
        None if resume => {
            return Err("campaign --resume needs --store DIR \
                        (the checkpoint journal lives in the corpus)"
                .into())
        }
        None => None,
    };

    // Resume: every seed the journal sealed before the campaign died is
    // adopted as-is; only the remainder is re-run.
    let mut completed: Vec<SeedReport> = Vec::new();
    if resume {
        let store = store.as_ref().expect("resume implies store");
        let mut by_seed: HashMap<u64, SeedReport> = HashMap::new();
        for line in store.journal_lines()? {
            let report: SeedReport = serde_json::from_str(&line).map_err(|e| {
                format!(
                    "corrupt journal line in {dir}: {e}",
                    dir = store.root().display()
                )
            })?;
            by_seed.insert(report.seed, report);
        }
        completed = seeds.iter().filter_map(|s| by_seed.remove(s)).collect();
    }
    let done: std::collections::HashSet<u64> = completed.iter().map(|r| r.seed).collect();
    let pending: Vec<u64> = seeds
        .iter()
        .copied()
        .filter(|s| !done.contains(s))
        .collect();
    if resume && !completed.is_empty() {
        eprintln!(
            "campaign: resuming — {} of {} seed(s) adopted from the journal, {} to run",
            completed.len(),
            seeds.len(),
            pending.len()
        );
    }

    // The supervised job: emulate-and-mine, persisting traces when a
    // store is attached, with chaos faults (if any) fired in front.
    let traced = mode.supervised_traced_job()?;
    let inner: SupervisedTracedJob = match &store {
        None => traced,
        Some(store) => {
            let store = store.clone();
            let mode_name = mode.name();
            let program_digest = mode.program_digest()?;
            Box::new(move |ctx: &RunContext| {
                let (outcome, traces) = traced(ctx)?;
                // With one writer, runs land in the flat top-level tree;
                // with several, each seed hashes to a shard sub-store so
                // no two writers ever publish into the same directory.
                let sink = if writers > 1 {
                    store
                        .shard(&format!("writer-{:02}", ctx.seed() % writers))
                        .map_err(|e| RunFailure::Transient(format!("opening shard: {e}")))?
                } else {
                    store.clone()
                };
                sink.save_run(ctx.seed(), mode_name, program_digest, &traces)
                    .map_err(|e| RunFailure::Transient(format!("storing run: {e}")))?;
                Ok((outcome, traces))
            })
        }
    };
    let plain: SupervisedJob =
        Box::new(move |ctx: &RunContext| inner(ctx).map(|(outcome, _)| outcome));
    let job: SupervisedJob = match chaos {
        Some(cfg) => Box::new(cfg.wrap(plain)),
        None => plain,
    };

    let journal_store = store.clone();
    let started = std::time::Instant::now();
    let mut result = run_supervised(&pending, &sup, std::sync::Arc::new(job), |report| {
        // Checkpoint each finished seed the moment it lands; a journal
        // hiccup must not kill the campaign, so it only warns.
        if let Some(store) = &journal_store {
            match serde_json::to_string(report) {
                Ok(line) => {
                    if let Err(e) = store.append_journal(&line) {
                        eprintln!("campaign: journal append failed: {e}");
                    }
                }
                Err(e) => eprintln!("campaign: journal encode failed: {e}"),
            }
        }
    });
    for report in completed {
        match (report.outcome, report.error) {
            (Some(outcome), _) => result.outcomes.push(outcome),
            (None, Some(error)) => result.errors.push(error),
            (None, None) => {}
        }
    }
    result.outcomes.sort_by_key(|o| o.seed);
    result.errors.sort_by_key(|e| e.seed);
    let elapsed = started.elapsed();

    let finished = result.outcomes.len() + result.errors.len() >= seeds.len();
    if let Some(store) = &store {
        if finished {
            store.save_campaign(&CampaignManifest {
                format_version: MANIFEST_VERSION,
                mode: mode.name().to_string(),
                params: mode.params(),
                seeds: n_seeds,
                base_seed,
                errors: result
                    .errors
                    .iter()
                    .map(|e| StoredRunError {
                        seed: e.seed,
                        message: e.message.clone(),
                        kind: e.kind.as_str().to_string(),
                        attempts: e.attempts,
                    })
                    .collect(),
            })?;
            store.clear_journal()?;
            // Stamp a fresh generation of the merged index over whatever
            // shard topology this sweep used; readers and `trace mine`
            // see one corpus either way.
            CorpusIndex::merge(store)?;
            eprintln!(
                "campaign: stored {} run(s) under {dir} (re-mine with \
                 `sentomist trace mine {dir}`)",
                result.outcomes.len(),
                dir = store.root().display()
            );
        } else {
            eprintln!(
                "campaign: stopped with {} of {} seed(s) done — checkpoint retained, \
                 continue with `sentomist campaign --resume --store {dir} [same flags]`",
                result.outcomes.len() + result.errors.len(),
                seeds.len(),
                dir = store.root().display()
            );
        }
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&campaign_document(std::mem::take(&mut config), &result))?
        );
    } else {
        print_campaign_table(&result);
        println!(
            "time:          {:.2} s wall on {} thread(s), {:.2} s total job time",
            elapsed.as_secs_f64(),
            threads,
            result.cpu_time_ms() as f64 / 1000.0
        );
        println!("replay a row:  sentomist campaign --replay --seed <seed> [same flags]");
    }
    if strict && !result.errors.is_empty() {
        return Err(format!(
            "--strict: {} of {} run(s) failed",
            result.errors.len(),
            seeds.len()
        )
        .into());
    }
    Ok(())
}

fn cmd_hunt(args: &[String]) -> Result<(), Box<dyn Error>> {
    use sentomist::apps::{
        emulate_scenario, hunt_iteration, mine_scenario, mined_matches, scenario,
        scenario_evidence, scenario_program, HuntCase, Variant,
    };
    use sentomist::core::hunt::{
        check_invariants, HuntReport, InvariantPolicy, IterationRecord, TargetReport,
    };
    use sentomist::core::supervise::run_supervised_typed;
    use std::path::PathBuf;
    use std::sync::Arc;

    let (_, flags) = parse_flags(args);
    reject_unknown_flags(
        "hunt",
        &flags,
        &[
            "case",
            "fixed",
            "iterations",
            "campaign-seed",
            "threads",
            "top-k",
            "out",
            "store",
            "json",
            "progress",
            "strict",
            "max-retries",
            "timeout-ms",
            "replay",
            "seed",
        ],
    )?;
    let json = flags.contains_key("json");
    let variant = if flags.contains_key("fixed") {
        Variant::Fixed
    } else {
        Variant::Buggy
    };
    let policy = InvariantPolicy {
        top_k: flag_u64(&flags, "top-k", 3)? as usize,
    };
    let cases: Vec<HuntCase> = match flags.get("case").map(String::as_str).unwrap_or("all") {
        "all" | "" => HuntCase::ALL.to_vec(),
        v => vec![v
            .parse::<u64>()
            .ok()
            .and_then(HuntCase::from_number)
            .ok_or_else(|| format!("--case wants 1, 2, 3 or all, got `{v}`"))?],
    };

    if flags.contains_key("replay") {
        let seed = flags
            .get("seed")
            .ok_or("hunt --replay needs --seed S")?
            .parse::<u64>()
            .map_err(|_| "--seed wants a number")?;
        let &[case] = cases.as_slice() else {
            return Err("hunt --replay needs a single --case (1, 2 or 3)".into());
        };
        let (record, _traces) = hunt_iteration(case, variant, seed, &policy)
            .map_err(|e| format!("seed {seed}: {e}"))?;
        if json {
            println!("{}", serde_json::to_string_pretty(&record)?);
        } else {
            println!(
                "hunt replay: {} ({}) seed {seed}",
                case.name(),
                variant.name()
            );
            println!(
                "  samples {}, symptoms {}, verdict {:?}, trace digest {}",
                record.outcome.samples,
                record.outcome.symptoms,
                record.outcome.verdict,
                record.outcome.trace_digest
            );
            if record.violations.is_empty() {
                println!(
                    "  no invariant violations ({} checked)",
                    record.checked.len()
                );
            }
            for v in &record.violations {
                println!("  VIOLATION {}: {}", v.invariant.slug(), v.message);
            }
            println!(
                "\nthe record above is a pure function of the seed — rerunning \
                 this replay (any thread count) must print it bit for bit"
            );
        }
        return Ok(());
    }

    let iterations = flag_u64(&flags, "iterations", 25)?;
    let campaign_seed = flag_u64(&flags, "campaign-seed", 0xBEEF)?;
    let threads = flag_u64(&flags, "threads", 1)?.max(1) as usize;
    let strict = flags.contains_key("strict");
    let progress = flags.contains_key("progress");
    let out_dir = PathBuf::from(match flags.get("out").map(String::as_str) {
        Some("") | None => ".",
        Some(dir) => dir,
    });
    let sup = SupervisorOptions {
        threads,
        max_retries: flag_u64(&flags, "max-retries", 0)? as u32,
        timeout: flag_opt_u64(&flags, "timeout-ms")?.map(std::time::Duration::from_millis),
        ..SupervisorOptions::default()
    };
    // Scenario seeds are a pure function of (campaign seed, iteration);
    // every target sweeps the same seeds.
    let seeds: Vec<u64> = (0..iterations)
        .map(|i| campaign_seed.wrapping_add(i))
        .collect();
    let store_root = match flags.get("store").filter(|s| !s.is_empty()) {
        Some(dir) => Some(TraceStore::create(dir)?),
        None => None,
    };

    let started = std::time::Instant::now();
    let mut targets = Vec::new();
    for case in cases {
        // Each target journals its traces into its own substore of the
        // corpus; with a store attached, the mining-determinism
        // invariant re-mines from the persisted (digest-verified) bytes
        // instead of from memory.
        let substore = match &store_root {
            Some(root) => Some(TraceStore::create(
                root.root()
                    .join("targets")
                    .join(format!("{}-{}", case.name(), variant.name())),
            )?),
            None => None,
        };
        let pol = policy;
        let job = move |ctx: &RunContext| -> Result<IterationRecord, RunFailure> {
            let seed = ctx.seed();
            let Some(store) = &substore else {
                return hunt_iteration(case, variant, seed, &pol)
                    .map(|(record, _)| record)
                    .map_err(RunFailure::Fatal);
            };
            let s = scenario(case, variant, seed);
            let traces = emulate_scenario(&s).map_err(RunFailure::Fatal)?;
            let mined = mine_scenario(&s, &traces).map_err(RunFailure::Fatal)?;
            let program = scenario_program(&s).map_err(RunFailure::Fatal)?;
            let digest = fnv64(tinyvm::disassemble(&program).as_bytes());
            let mode = format!("hunt-{}-{}", case.name(), variant.name());
            let manifest = store
                .save_run(seed, &mode, digest, &traces)
                .map_err(|e| RunFailure::Transient(format!("storing run: {e}")))?;
            let loaded = store
                .load_traces(&manifest)
                .map_err(|e| RunFailure::Transient(format!("loading stored run: {e}")))?;
            let remined = mine_scenario(&s, &loaded).map_err(RunFailure::Fatal)?;
            let remine_matches = mined_matches(&s, &mined, &remined);
            let evidence = scenario_evidence(&s, &mined, remine_matches);
            let (checked, violations) = check_invariants(&evidence, &pol);
            Ok(IterationRecord {
                seed,
                outcome: evidence.outcome,
                checked,
                violations,
            })
        };
        let label = format!("{}-{}", case.name(), variant.name());
        let result = run_supervised_typed(&seeds, &sup, Arc::new(job), |report| {
            if progress {
                match (&report.outcome, &report.error) {
                    (Some(r), _) => eprintln!(
                        "hunt: [{label}] seed {} ok — {} violation(s)",
                        report.seed,
                        r.violations.len()
                    ),
                    (_, Some(e)) => {
                        eprintln!("hunt: [{label}] seed {} FAILED: {}", report.seed, e.message)
                    }
                    (None, None) => {}
                }
            }
        });
        let records: Vec<IterationRecord> = result.outcomes.into_iter().map(|(_, r)| r).collect();
        let repro_template = format!(
            "hunt --case {}{} --replay --seed {{seed}}",
            case.number(),
            if variant.is_fixed() { " --fixed" } else { "" }
        );
        targets.push(TargetReport::from_records(
            case.name(),
            variant.name(),
            &repro_template,
            records,
            result.errors,
        ));
    }
    let elapsed = started.elapsed();

    let report = HuntReport {
        campaign_seed,
        iterations,
        top_k: policy.top_k,
        targets,
    };
    let markdown = report.to_markdown();
    let mut doc = serde_json::to_string_pretty(&report)?;
    doc.push('\n');

    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let md_path = out_dir.join("BUG_REPORT.md");
    let json_path = out_dir.join("bug_report.json");
    std::fs::write(&md_path, &markdown)
        .map_err(|e| format!("writing {}: {e}", md_path.display()))?;
    std::fs::write(&json_path, &doc)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    if let Some(root) = &store_root {
        root.save_artifact("BUG_REPORT.md", &markdown)?;
        root.save_artifact("bug_report.json", &doc)?;
        eprintln!(
            "hunt: corpus stored under {} (targets/<case>-<variant>/)",
            root.root().display()
        );
    }

    if json {
        print!("{doc}");
    } else {
        println!(
            "{:<13} {:<6} {:>5} {:>9} {:>10} {:>7}",
            "target", "variant", "runs", "triggered", "violations", "failed"
        );
        for t in &report.targets {
            println!(
                "{:<13} {:<6} {:>5} {:>9} {:>10} {:>7}",
                t.target,
                t.variant,
                t.runs,
                t.triggered,
                t.records.iter().map(|r| r.violations.len()).sum::<usize>(),
                t.errors.len()
            );
        }
        println!(
            "\n{} invariant violation(s), {} failed run(s) in {:.2} s on {} thread(s)",
            report.violation_count(),
            report.error_count(),
            elapsed.as_secs_f64(),
            threads
        );
        println!("report:  {}", md_path.display());
        println!("         {}", json_path.display());
        println!("replay:  sentomist hunt --case <n> [--fixed] --replay --seed <seed>");
    }
    if strict && (report.violation_count() > 0 || report.error_count() > 0) {
        return Err(format!(
            "--strict: {} invariant violation(s), {} failed run(s)",
            report.violation_count(),
            report.error_count()
        )
        .into());
    }
    Ok(())
}

/// An unknown or missing subcommand: print the full usage text on
/// stderr (stdout stays clean for pipelines) and fail with a short,
/// grep-friendly message — every such branch exits nonzero.
fn usage_error(message: String) -> Box<dyn Error> {
    eprint!("{}", usage());
    message.into()
}

fn cmd_trace(args: &[String]) -> Result<(), Box<dyn Error>> {
    let sub = args.first().map(String::as_str).ok_or_else(|| {
        usage_error("trace: missing subcommand (record|ls|info|mine|quarantine|fsck|merge)".into())
    })?;
    let rest = &args[1..];
    match sub {
        "record" => cmd_trace_record(rest),
        "ls" => cmd_trace_ls(rest),
        "info" => cmd_trace_info(rest),
        "mine" => cmd_trace_mine(rest),
        "quarantine" => cmd_trace_quarantine(rest),
        "fsck" => cmd_trace_fsck(rest),
        "merge" => cmd_trace_merge(rest),
        other => Err(usage_error(format!(
            "unknown trace subcommand `{other}` (record|ls|info|mine|quarantine|fsck|merge)"
        ))),
    }
}

fn cmd_trace_fsck(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags("trace fsck", &flags, &["repair"])?;
    // `trace fsck --repair <dir>` parses the dir as the flag's value;
    // accept it from either position.
    let root = pos
        .first()
        .cloned()
        .or_else(|| flags.get("repair").filter(|s| !s.is_empty()).cloned())
        .ok_or("trace fsck: missing <store-dir>")?;
    let repair = flags.contains_key("repair");
    let store = TraceStore::open(&root)?;
    let report = store.fsck(repair)?;
    if report.is_clean() {
        println!("{root}: clean — no pending log entries, temp files or damaged runs");
        return Ok(());
    }
    for target in &report.pending {
        println!("pending:   {target} (write-ahead intent without a commit)");
    }
    for tmp in &report.torn_tmp {
        println!("tmp:       {tmp}");
    }
    for run in &report.torn_runs {
        println!("torn:      {run} (manifest missing or unreadable)");
    }
    for run in &report.damaged_runs {
        println!("damaged:   {run} (trace file missing or short)");
    }
    if report.stale_index {
        println!("index:     stale (run set changed since the last merge)");
    }
    if repair {
        println!(
            "repaired: {} temp file(s) swept, {} run(s) quarantined, \
             index {}",
            report.torn_tmp.len(),
            report.torn_runs.len() + report.damaged_runs.len(),
            if report.stale_index {
                "rebuilt"
            } else {
                "already current"
            }
        );
        Ok(())
    } else {
        Err("store needs repair — rerun with --repair".into())
    }
}

fn cmd_trace_merge(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags("trace merge", &flags, &[])?;
    let root = pos.first().ok_or("trace merge: missing <store-dir>")?;
    let store = TraceStore::open(root)?;
    let shards = store.shard_ids()?;
    if shards.is_empty() {
        println!("{root}: no shards — corpus is already flat");
        return Ok(());
    }
    // compact_shards republishes the merged index itself; load it back
    // for the summary line rather than bumping another generation.
    let moved = store.compact_shards()?;
    let index = CorpusIndex::load(&store)?
        .ok_or("compaction finished but left no index — store is damaged")?;
    println!(
        "merged {} run(s) from {} shard(s) into {root}/runs \
         (index generation {}, corpus digest {:016x})",
        moved.len(),
        shards.len(),
        index.generation,
        index.corpus_digest()
    );
    Ok(())
}

fn cmd_trace_quarantine(args: &[String]) -> Result<(), Box<dyn Error>> {
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or_else(|| usage_error("trace quarantine: missing subcommand (ls)".into()))?;
    match sub {
        "ls" => {
            let (pos, flags) = parse_flags(&args[1..]);
            reject_unknown_flags("trace quarantine ls", &flags, &[])?;
            let root = pos
                .first()
                .ok_or("trace quarantine ls: missing <store-dir>")?;
            let store = TraceStore::open(root)?;
            let notes = store.quarantined()?;
            if notes.is_empty() {
                println!("quarantine is empty");
                return Ok(());
            }
            println!("{:<26} reason", "run");
            for note in &notes {
                println!("{:<26} {}", note.run_id, note.reason);
            }
            println!(
                "\n{} quarantined run(s) under {}",
                notes.len(),
                store.quarantine_dir().display()
            );
            Ok(())
        }
        other => Err(usage_error(format!(
            "unknown trace quarantine subcommand `{other}` (ls)"
        ))),
    }
}

fn cmd_trace_record(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags("trace record", &flags, &["cycles", "seed", "out"])?;
    let path = pos.first().ok_or("trace record: missing <app.s>")?;
    let cycles = flag_u64(&flags, "cycles", 10_000_000)?;
    let seed = flag_u64(&flags, "seed", 42)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("{path}.stc"));
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let program = std::sync::Arc::new(tinyvm::assemble(&src)?);
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed,
            ..NodeConfig::default()
        },
    );
    // Tee the lifecycle stream: the writer encodes chunks to disk as the
    // VM emits items, the recorder keeps the trace for the digest line.
    let mut recorder = Recorder::new(program.len());
    let mut writer = TraceWriter::create(Path::new(&out), program.len())?;
    node.run(cycles, &mut tinyvm::Tee(&mut recorder, &mut writer))?;
    let stats = writer.finish()?;
    let trace = recorder.try_into_trace()?;
    println!(
        "recorded {} lifecycle events + {} segments over {} cycles",
        stats.events,
        stats.segments,
        node.cycle()
    );
    println!(
        "{out}: {} bytes ({:.1}% of the {}-byte fixed-width encoding), \
         trace digest {:016x}",
        stats.encoded_bytes,
        100.0 * stats.ratio(),
        stats.naive_bytes,
        trace.digest()
    );
    Ok(())
}

fn cmd_trace_ls(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags("trace ls", &flags, &[])?;
    let root = pos.first().ok_or("trace ls: missing <store-dir>")?;
    let store = TraceStore::open(root)?;
    if let Some(c) = store.campaign()? {
        println!(
            "campaign: mode {}, {} seed(s) from {}{}{}",
            c.mode,
            c.seeds,
            c.base_seed,
            if c.params.is_empty() {
                String::new()
            } else {
                format!(", {}", c.params.join(", "))
            },
            if c.errors.is_empty() {
                String::new()
            } else {
                format!(", {} failed run(s)", c.errors.len())
            },
        );
    }
    println!(
        "{:<26} {:>8} {:>7} {:>5} {:>10} {:>12}",
        "run", "seed", "mode", "nodes", "events", "bytes"
    );
    for m in store.manifests()? {
        let events: u64 = m.nodes.iter().map(|n| n.events).sum();
        let bytes: u64 = m.nodes.iter().map(|n| n.encoded_bytes).sum();
        println!(
            "{:<26} {:>8} {:>7} {:>5} {:>10} {:>12}",
            m.run_id,
            m.seed,
            m.mode,
            m.nodes.len(),
            events,
            bytes
        );
    }
    Ok(())
}

/// Streams one `.stc` file twice: once to count records, once through the
/// online extractor for interval statistics — never materializing the
/// dense trace.
fn stc_file_info(path: &Path) -> Result<(), Box<dyn Error>> {
    use sentomist::tracestore::Record;
    let mut reader = TraceReader::open(path)?;
    println!(
        "{}: stc v{}, program length {}",
        path.display(),
        sentomist::tracestore::FORMAT_VERSION,
        reader.program_len()
    );
    let mut events = 0u64;
    let mut segments = 0u64;
    let mut last_cycle = 0u64;
    while let Some(record) = reader.next_record()? {
        match record {
            Record::Event(e) => {
                events += 1;
                last_cycle = e.cycle;
            }
            Record::Segment(_) => segments += 1,
        }
    }
    let bytes = std::fs::metadata(path)
        .map_err(|e| format!("stat {}: {e}", path.display()))?
        .len();
    println!("  {events} lifecycle events, {segments} segments, last event at cycle {last_cycle}");
    println!(
        "  {bytes} bytes on disk ({:.2} per event+segment pair)",
        if events + segments == 0 {
            0.0
        } else {
            bytes as f64 / (events + segments) as f64
        }
    );
    let intervals = TraceReader::open(path)?.replay_online()?;
    let mut per_irq: Vec<(u8, usize)> = Vec::new();
    for iv in &intervals {
        match per_irq.iter_mut().find(|(irq, _)| *irq == iv.irq) {
            Some((_, n)) => *n += 1,
            None => per_irq.push((iv.irq, 1)),
        }
    }
    per_irq.sort_unstable();
    println!("  {} event-handling intervals:", intervals.len());
    for (irq, n) in per_irq {
        println!("    irq {irq} ({}): {n}", tinyvm::isa::irq::name(irq));
    }
    Ok(())
}

/// Salvage report for one damaged (or whole) `.stc` file: recover the
/// checksummed prefix and account for what was lost.
fn stc_file_salvage(path: &Path) -> Result<(), Box<dyn Error>> {
    let salvage = sentomist::tracestore::salvage_trace_file(path)?;
    if salvage.complete {
        println!(
            "{}: intact — all {} chunk(s) verified, nothing to salvage",
            path.display(),
            salvage.recovered_chunks
        );
    } else {
        println!(
            "{}: damaged — {}",
            path.display(),
            salvage.error.as_deref().unwrap_or("unknown defect")
        );
    }
    println!(
        "  recovered {} chunk(s): {} event(s), {} segment(s) \
         ({} trailing event(s) dropped to restore the protocol)",
        salvage.recovered_chunks,
        salvage.trace.events.len(),
        salvage.trace.segments.len(),
        salvage.dropped_events
    );
    if salvage.lost_bytes > 0 {
        println!(
            "  {} byte(s) unreadable past the defect",
            salvage.lost_bytes
        );
    }
    println!("  salvaged trace digest {:016x}", salvage.trace.digest());
    Ok(())
}

fn cmd_trace_info(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags("trace info", &flags, &["salvage"])?;
    // `trace info --salvage <path>` parses the path as the flag's value;
    // accept it from either position.
    let target = pos
        .first()
        .cloned()
        .or_else(|| flags.get("salvage").filter(|s| !s.is_empty()).cloned())
        .ok_or("trace info: missing <file.stc | store-dir>")?;
    let path = Path::new(&target);
    if flags.contains_key("salvage") {
        if path.is_dir() {
            return Err("trace info --salvage works on a single .stc file".into());
        }
        return stc_file_salvage(path);
    }
    if !path.is_dir() {
        return stc_file_info(path);
    }
    let store = TraceStore::open(path)?;
    if let Some(c) = store.campaign()? {
        println!(
            "campaign: mode {}, {} seed(s) from {}, params [{}]",
            c.mode,
            c.seeds,
            c.base_seed,
            c.params.join(", ")
        );
        for e in &c.errors {
            println!("  seed {} failed live: {}", e.seed, e.message);
        }
    }
    for m in store.manifests()? {
        println!(
            "{} (seed {}, mode {}, program {}):",
            m.run_id, m.seed, m.mode, m.program_digest
        );
        for n in &m.nodes {
            println!(
                "  {} — node {}, {} events, {} segments, {} bytes, digest {}",
                n.file, n.node, n.events, n.segments, n.encoded_bytes, n.trace_digest
            );
        }
    }
    Ok(())
}

fn cmd_trace_mine(args: &[String]) -> Result<(), Box<dyn Error>> {
    let (pos, flags) = parse_flags(args);
    reject_unknown_flags(
        "trace mine",
        &flags,
        &["threads", "json", "progress", "quarantine"],
    )?;
    // `trace mine --quarantine <dir>` parses the dir as the flag's
    // value; accept it from either position.
    let root = pos
        .first()
        .cloned()
        .or_else(|| flags.get("quarantine").filter(|s| !s.is_empty()).cloned())
        .ok_or("trace mine: missing <store-dir>")?;
    let root = root.as_str();
    let json = flags.contains_key("json");
    let store = TraceStore::open(root)?;
    let threads = flag_u64(&flags, "threads", 1)?.max(1) as usize;
    let started = std::time::Instant::now();
    // The whole re-mine vertical is `apps::jobs::mine_corpus` — the
    // same call the mining daemon answers Mine requests with, so this
    // command and a daemon response are byte-identical by construction.
    let mined = mine_corpus(
        &store,
        &CorpusMineOptions {
            threads,
            progress: flags.contains_key("progress"),
            quarantine: flags.contains_key("quarantine"),
        },
    )?;
    let elapsed = started.elapsed();

    if json {
        // The document already carries its trailing newline.
        print!("{}", mined.document);
        return Ok(());
    }
    print_campaign_table(&mined.result);
    for q in &mined.quarantined {
        println!(
            "quarantined:   {} (seed {}) — {}",
            q.run_id, q.seed, q.reason
        );
    }
    println!(
        "time:          {:.2} s wall on {} thread(s) — re-mined from {}, no emulation",
        elapsed.as_secs_f64(),
        threads,
        root
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "assemble" => cmd_assemble(rest),
        "run" => cmd_run(rest),
        "lint" => cmd_lint(rest),
        "slice" => cmd_slice(rest),
        "mine" => cmd_mine(rest),
        "localize" => cmd_localize(rest),
        "profile" => cmd_profile(rest),
        "case" => cmd_case(rest),
        "campaign" => cmd_campaign(rest),
        "hunt" => cmd_hunt(rest),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(usage_error(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
