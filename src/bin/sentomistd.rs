//! `sentomistd` — the long-running symptom-mining daemon.
//!
//! Binds a loopback TCP port, prints `listening on ADDR` (the line CI
//! and tests parse to discover a port-0 bind), and serves emulate /
//! mine / lint / hunt jobs until a client sends a `Shutdown` frame.
//! Exit code 0 is the clean-shutdown contract the CI smoke job asserts.

use sentomist::service::{Server, ServiceConfig};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> &'static str {
    "sentomistd — the Sentomist mining daemon

USAGE:
    sentomistd [--host H] [--port P] [--workers N] [--queue-capacity N]
               [--cache-capacity N] [--retries N] [--timeout-ms MS]
               [--mine-threads N] [--read-timeout-ms MS]
               [--write-timeout-ms MS] [--max-connections N]

OPTIONS:
    --host H              listen host (default 127.0.0.1)
    --port P              listen port; 0 picks a free port (default 7344)
    --workers N           worker threads (default 2)
    --queue-capacity N    bounded admission queue size (default 64)
    --cache-capacity N    result-cache capacity in documents (default 16)
    --retries N           retries for transient job failures (default 0)
    --timeout-ms MS       per-attempt watchdog, 0 = none (default 0)
    --mine-threads N      store-sweep threads per mine job (default 1)
    --read-timeout-ms MS  per-frame read deadline on every connection;
                          a peer gets MS ms total to deliver one request
                          frame however it chops the bytes. 0 disables
                          (default 30000)
    --write-timeout-ms MS per-write deadline toward clients, 0 disables
                          (default 10000)
    --max-connections N   concurrent-connection cap; accepts beyond it
                          are shed with a typed Overloaded frame.
                          0 disables (default 256)

The daemon prints `listening on HOST:PORT` once ready, then serves
until a client sends a Shutdown frame (`sentomist_loadgen --shutdown`),
exiting 0. At shutdown it prints a thread-accounting line to stderr
(`... 0 leaked`) — the no-thread-leak proof the chaos soak greps."
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument `{arg}`"));
        };
        let value = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 1;
                v.clone()
            }
            _ => String::new(),
        };
        flags.insert(name.to_string(), value);
        i += 1;
    }
    Ok(flags)
}

fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} wants a number, got `{v}`")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.contains_key("help") {
        println!("{}", usage());
        return Ok(());
    }
    let host = flags
        .get("host")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1".into());
    let port = flag_u64(&flags, "port", 7344)?;
    let timeout_ms = flag_u64(&flags, "timeout-ms", 0)?;
    let read_timeout_ms = flag_u64(&flags, "read-timeout-ms", 30_000)?;
    let write_timeout_ms = flag_u64(&flags, "write-timeout-ms", 10_000)?;
    let config = ServiceConfig {
        addr: format!("{host}:{port}"),
        workers: flag_u64(&flags, "workers", 2)? as usize,
        queue_capacity: flag_u64(&flags, "queue-capacity", 64)? as usize,
        cache_capacity: flag_u64(&flags, "cache-capacity", 16)? as usize,
        max_retries: flag_u64(&flags, "retries", 0)? as u32,
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        mine_threads: flag_u64(&flags, "mine-threads", 1)? as usize,
        read_timeout: (read_timeout_ms > 0).then(|| Duration::from_millis(read_timeout_ms)),
        write_timeout: (write_timeout_ms > 0).then(|| Duration::from_millis(write_timeout_ms)),
        max_connections: flag_u64(&flags, "max-connections", 256)? as usize,
    };
    let server = Server::start(config).map_err(|e| e.to_string())?;
    println!("listening on {}", server.local_addr());
    // Tests and the smoke job read this line through a pipe; make sure
    // it is not sitting in a stdio buffer while we block in wait().
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = server.wait();
    let leaked = report.handlers_spawned - report.handlers_joined;
    eprintln!(
        "sentomistd: shutdown complete (handlers spawned={} joined={} panicked={}, workers joined={}, {} leaked)",
        report.handlers_spawned,
        report.handlers_joined,
        report.handlers_panicked,
        report.workers_joined,
        leaked
    );
    if !report.clean() {
        return Err(format!(
            "unclean shutdown: {leaked} leaked handler thread(s), {} panicked",
            report.handlers_panicked
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
