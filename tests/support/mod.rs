//! Shared helpers for the integration-test suites: spawning the real
//! `sentomist` binary, per-test scratch directories, and small fixture
//! constructors. Each test binary pulls in its own subset, hence the
//! blanket `dead_code` allowance.
#![allow(dead_code)]

use sentomist::core::campaign::{RunOutcome, Verdict};
use sentomist::tinyvm::LifecycleItem;
use sentomist::trace::TraceEvent;
use serde::Value;
use std::path::PathBuf;
use std::process::Command;

/// A command running the compiled `sentomist` CLI binary.
pub fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sentomist"))
}

/// A fresh per-test scratch directory. The tag must be unique within a
/// test binary — the directory is wiped before use.
pub fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentomist-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the command, asserts exit 0, and returns (stdout, stderr).
pub fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "command failed:\n{stderr}\n{stdout}");
    (stdout, stderr)
}

/// A minimal clean campaign outcome for supervisor-level tests.
pub fn ok_outcome(seed: u64) -> RunOutcome {
    RunOutcome {
        seed,
        samples: 3,
        symptoms: 0,
        buggy_ranks: vec![],
        verdict: Verdict::Clean,
        trace_digest: format!("{seed:016x}"),
        wall_time_ms: 0,
    }
}

/// Shorthand for one lifecycle trace event.
pub fn ev(cycle: u64, item: LifecycleItem) -> TraceEvent {
    TraceEvent { cycle, item }
}

/// Extracts an unsigned integer field from a parsed JSON value.
pub fn get_u64(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::U64(n)) => *n,
        other => panic!("field {key} is {other:?}, expected an unsigned integer"),
    }
}
