//! Baseline-model regression testing, end to end: freeze a one-class SVM
//! on a reference run in which the race happened not to trigger, then
//! screen later runs against it — triggered symptoms must screen first,
//! and a clean later run must show no comparable deviation.

use sentomist::apps::oscilloscope::{self, OscilloscopeParams};
use sentomist::core::{baseline::BaselineModel, harvest, Sample, SampleIndex};
use sentomist::tinyvm::{devices::NodeConfig, isa::irq, node::Node, LifecycleItem};
use sentomist::trace::{Recorder, Trace};

fn run(seed: u64) -> (Trace, Vec<Sample>) {
    let params = OscilloscopeParams::with_period_ms(60);
    let program = oscilloscope::buggy(&params).unwrap();
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed,
            ..NodeConfig::default()
        },
    );
    let mut rec = Recorder::new(program.len());
    node.run(10_000_000, &mut rec).unwrap();
    let trace = rec.into_trace();
    let samples = harvest(&trace, irq::ADC, |s, _| SampleIndex::Seq(s)).unwrap();
    (trace, samples)
}

fn symptom_positions(trace: &Trace, samples: &[Sample]) -> Vec<usize> {
    samples
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            (s.interval.start_index + 1..s.interval.end_index)
                .any(|i| trace.events[i].item == LifecycleItem::Int(irq::ADC))
        })
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn frozen_baseline_screens_a_later_triggered_run() {
    // Gather several clean reference runs and one triggered run at
    // D = 60 ms (the race is rare there; see the trigger campaign). A
    // single-run baseline over-fits that run's particular interleavings —
    // pooling a few reference seeds is what covers benign cross-run
    // variation, exactly as one would collect several known-good nightly
    // runs in practice.
    let mut clean: Vec<Sample> = Vec::new();
    let mut clean_runs = 0;
    let mut triggered = None;
    for seed in 1000..1040u64 {
        let (trace, samples) = run(seed);
        let symptoms = symptom_positions(&trace, &samples);
        if symptoms.is_empty() && clean_runs < 4 {
            clean.extend(samples);
            clean_runs += 1;
        } else if !symptoms.is_empty() && triggered.is_none() {
            triggered = Some((samples, symptoms));
        }
        if clean_runs == 4 && triggered.is_some() {
            break;
        }
    }
    assert_eq!(clean_runs, 4, "clean runs exist at D=60");
    let (later, symptoms) = triggered.expect("a triggered run exists at D=60");

    // Freeze the baseline on the pooled clean runs.
    let model = BaselineModel::fit(&clean, 0.05).unwrap();

    // Screen the later (triggered) run: symptoms first.
    let screened = model.screen(&later).unwrap();
    let top: Vec<usize> = screened
        .iter()
        .take(symptoms.len())
        .map(|&(i, _)| i)
        .collect();
    for s in &symptoms {
        assert!(
            top.contains(s),
            "symptom at position {s} not in screened top {top:?}"
        );
    }
    // And the top symptom sits outside the frozen boundary. (Comparing
    // against the clean run's own minimum would be wrong: by design a
    // ν-fraction of the *training* points sits on or beyond the boundary.)
    assert!(
        screened[0].1 < 0.0,
        "symptom score {} not outside the boundary",
        screened[0].1
    );
    // Cross-run generalization is partial — a minority of the later
    // run's benign intervals also falls slightly outside the frozen
    // boundary (unseen-but-harmless interleaving mixes). That is exactly
    // why the method's contract is a *ranking* for prioritized
    // inspection rather than a hard classifier: the true symptom still
    // screens first (asserted above), while the boundary keeps the
    // majority clearly normal.
    let negatives = screened.iter().filter(|&&(_, sc)| sc < 0.0).count();
    assert!(
        negatives * 2 < later.len(),
        "{negatives} of {} outside the boundary",
        later.len()
    );
}

#[test]
fn frozen_baseline_is_portable_across_processes() {
    // Serialize the model, reload it, and screen with the copy — the CLI
    // scenario of fitting once and screening nightly runs.
    let (_, clean) = {
        let (trace, samples) = run(1000);
        assert!(symptom_positions(&trace, &samples).is_empty());
        (trace, samples)
    };
    let model = BaselineModel::fit(&clean, 0.05).unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let reloaded: BaselineModel = serde_json::from_str(&json).unwrap();
    let (later_trace, later) = run(1002);
    let a = model.screen(&later).unwrap();
    let b = reloaded.screen(&later).unwrap();
    let ia: Vec<usize> = a.iter().map(|&(i, _)| i).collect();
    let ib: Vec<usize> = b.iter().map(|&(i, _)| i).collect();
    assert_eq!(ia, ib);
    let _ = later_trace;
}
