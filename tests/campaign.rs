//! Campaign determinism and replay contracts (the orchestrator's two
//! load-bearing guarantees):
//!
//! 1. **Thread-count invariance** — a seed sweep aggregated by the
//!    orchestrator serializes to *byte-identical* JSON whether 1 or 4
//!    worker threads ran it; scheduling must never leak into results.
//! 2. **Reproduce-by-seed** — re-running any flagged seed through the
//!    same job reproduces the original outcome exactly, down to the
//!    trace digest (which fingerprints the full recorded execution).

use sentomist::apps::experiments::trigger_job;
use sentomist::core::campaign::{
    replay, run_campaign, summarize, CampaignOptions, CampaignResult, Verdict,
};
use serde::Serialize;

/// 2-second runs at the race-friendliest period keep the sweep quick
/// while still triggering the bug in a healthy fraction of seeds.
fn sweep(threads: usize) -> CampaignResult {
    let job = trigger_job(20, 2, 0.05).expect("oscilloscope assembles");
    let seeds: Vec<u64> = (1000..1016).collect();
    run_campaign(
        &seeds,
        CampaignOptions {
            threads,
            progress: false,
        },
        job,
    )
}

/// The serialized campaign document a consumer would persist: outcomes,
/// errors and the aggregate summary.
fn document(result: &CampaignResult) -> String {
    let doc = serde::Value::Map(vec![
        (
            "outcomes".to_string(),
            Serialize::to_value(&result.outcomes),
        ),
        ("errors".to_string(), Serialize::to_value(&result.errors)),
        (
            "summary".to_string(),
            Serialize::to_value(&result.summary()),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("campaign document serializes")
}

#[test]
fn sixteen_seed_sweep_is_byte_identical_across_thread_counts() {
    let single = sweep(1);
    let parallel = sweep(4);

    assert_eq!(single.outcomes.len(), 16, "all seeds complete");
    assert!(single.errors.is_empty(), "no seed faults");

    // The structures agree field for field (timing excluded)...
    for (a, b) in single.outcomes.iter().zip(&parallel.outcomes) {
        assert!(
            a.matches(b),
            "seed {} diverged across thread counts",
            a.seed
        );
    }
    // ...and the serialized documents are byte-identical.
    assert_eq!(document(&single), document(&parallel));
}

#[test]
fn sweep_triggers_and_ranks_the_race() {
    let result = sweep(2);
    let summary = summarize(&result.outcomes);
    assert_eq!(summary.runs, 16);
    // At D = 20 ms the race fires in most 2 s runs.
    assert!(
        summary.triggered >= 8,
        "expected a majority of seeds to trigger, got {}/16",
        summary.triggered
    );
    // Whenever the bug fires, mining surfaces it near the top.
    assert!(summary.hits_top3 >= summary.triggered / 2);
    for o in result.triggered() {
        assert_eq!(o.verdict, Verdict::Triggered);
        assert!(o.symptoms > 0);
        assert!(!o.buggy_ranks.is_empty());
    }
}

#[test]
fn replaying_a_flagged_seed_reproduces_outcome_and_digest() {
    let result = sweep(2);
    let flagged = result
        .triggered()
        .next()
        .expect("at least one seed triggers the race");

    // A fresh job (fresh program assembly, fresh pipeline) — only the
    // seed carries over, exactly the reproduce-by-seed workflow.
    let job = trigger_job(20, 2, 0.05).expect("oscilloscope assembles");
    let replayed = replay(flagged.seed, job).expect("replay completes");

    assert!(
        replayed.matches(flagged),
        "replay of seed {} diverged: {:?} vs {:?}",
        flagged.seed,
        replayed,
        flagged
    );
    assert_eq!(replayed.trace_digest, flagged.trace_digest);
    assert_eq!(replayed.buggy_ranks, flagged.buggy_ranks);
}

#[test]
fn outcome_lookup_finds_every_seed() {
    let result = sweep(2);
    for o in &result.outcomes {
        assert_eq!(result.outcome_for(o.seed).unwrap().seed, o.seed);
    }
    assert!(result.outcome_for(999).is_none());
}
