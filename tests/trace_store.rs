//! End-to-end tests of the persistent trace-store workflow through real
//! `sentomist` process invocations: record a campaign into a corpus with
//! `campaign --store`, inspect it with `trace ls` / `trace info`, re-mine
//! it with `trace mine`, and verify the re-mined JSON document is
//! byte-identical to the live campaign's. Corrupting the corpus must
//! produce clean nonzero exits, never a panic.

mod support;

use serde::Value;
use support::{cli, get_u64, run_ok, workdir};

#[test]
fn campaign_store_then_remine_is_byte_identical() {
    let dir = workdir("remine");
    let store = dir.join("corpus");

    // Live campaign, persisting every run's traces into the store.
    let (live_json, _) = run_ok(
        cli()
            .args([
                "campaign",
                "--seeds",
                "4",
                "--base-seed",
                "1000",
                "--seconds",
                "2",
                "--threads",
                "2",
                "--json",
                "--store",
            ])
            .arg(&store),
    );

    // The corpus has the expected shape on disk.
    assert!(store.join("campaign.json").exists());
    for seed in 1000u64..1004 {
        let run = store.join("runs").join(format!("seed-{seed:020}"));
        assert!(
            run.join("manifest.json").exists(),
            "missing {}",
            run.display()
        );
        assert!(run.join("node-000.stc").exists());
    }

    // `trace ls` sees all four runs.
    let (ls, _) = run_ok(cli().arg("trace").arg("ls").arg(&store));
    assert!(ls.contains("trigger"), "ls output: {ls}");
    for seed in 1000u64..1004 {
        assert!(ls.contains(&format!("seed-{seed:020}")), "ls output: {ls}");
    }

    // `trace info` streams one stored file without re-emulating.
    let (info, _) = run_ok(
        cli().arg("trace").arg("info").arg(
            store
                .join("runs")
                .join(format!("seed-{:020}", 1000))
                .join("node-000.stc"),
        ),
    );
    assert!(info.contains("lifecycle events"), "info output: {info}");
    assert!(info.contains("stc v1"), "info output: {info}");

    // Re-mine the corpus: the JSON document must be byte-identical to the
    // live campaign's (config, outcomes, summary, errors — everything).
    let (mined_json, _) =
        run_ok(
            cli()
                .arg("trace")
                .arg("mine")
                .arg(&store)
                .args(["--threads", "2", "--json"]),
        );
    assert_eq!(
        live_json, mined_json,
        "re-mined campaign JSON differs from the live campaign JSON"
    );

    // Determinism: a second re-mine with a different thread count is
    // byte-identical too.
    let (mined_again, _) =
        run_ok(
            cli()
                .arg("trace")
                .arg("mine")
                .arg(&store)
                .args(["--threads", "1", "--json"]),
        );
    assert_eq!(live_json, mined_again);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stored_traces_beat_the_size_ceiling() {
    let dir = workdir("ratio");
    let store = dir.join("corpus");
    run_ok(
        cli()
            .args([
                "campaign",
                "--seeds",
                "2",
                "--base-seed",
                "42",
                "--seconds",
                "2",
                "--json",
                "--store",
            ])
            .arg(&store),
    );

    // The acceptance criterion: encoded size ≤ 25% of the naive
    // fixed-width encoding (11 bytes/event + 4 bytes/counter slot).
    let mut naive_total = 0u64;
    let mut encoded_total = 0u64;
    for seed in [42u64, 43] {
        let run = store.join("runs").join(format!("seed-{seed:020}"));
        let manifest: Value =
            serde_json::from_str(&std::fs::read_to_string(run.join("manifest.json")).unwrap())
                .unwrap();
        for node in manifest.get("nodes").unwrap().as_seq().unwrap() {
            let events = get_u64(node, "events");
            let segments = get_u64(node, "segments");
            let encoded = get_u64(node, "encoded_bytes");
            // The program length isn't in the manifest; read the file header.
            let file = match node.get("file") {
                Some(Value::Str(f)) => run.join(f),
                other => panic!("node file is {other:?}"),
            };
            let header = std::fs::read(&file).unwrap();
            let plen = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as u64;
            assert!(plen > 0 && plen < 1 << 20);
            naive_total += events * 11 + segments * plen * 4;
            encoded_total += encoded;
        }
    }
    assert!(encoded_total > 0);
    let ratio = encoded_total as f64 / naive_total as f64;
    assert!(
        ratio <= 0.25,
        "stored corpus is {encoded_total} bytes = {:.1}% of the {naive_total}-byte naive \
         encoding; the ceiling is 25%",
        ratio * 100.0
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_corpus_fails_cleanly_never_panics() {
    let dir = workdir("corrupt");
    let store = dir.join("corpus");
    run_ok(
        cli()
            .args([
                "campaign",
                "--seeds",
                "2",
                "--base-seed",
                "7",
                "--seconds",
                "2",
                "--json",
                "--store",
            ])
            .arg(&store),
    );

    // Bit-rot one stored trace: `trace info` on it must fail cleanly.
    let victim = store
        .join("runs")
        .join(format!("seed-{:020}", 7))
        .join("node-000.stc");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim, &bytes).unwrap();

    let out = cli()
        .arg("trace")
        .arg("info")
        .arg(&victim)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("panicked"), "stderr: {err}");
    assert!(err.contains("error"), "stderr: {err}");

    // `trace mine` surfaces the bad run as a run error (partial result),
    // still exits cleanly, and the intact run is still mined.
    let (mined, _) = run_ok(cli().arg("trace").arg("mine").arg(&store).arg("--json"));
    let doc: Value = serde_json::from_str(&mined).unwrap();
    let errors = doc.get("errors").unwrap().as_seq().unwrap();
    assert_eq!(errors.len(), 1, "errors: {errors:?}");
    assert_eq!(get_u64(&errors[0], "seed"), 7);
    assert_eq!(doc.get("outcomes").unwrap().as_seq().unwrap().len(), 1);

    // Truncation (a killed writer) is also a clean failure.
    bytes.truncate(mid);
    std::fs::write(&victim, &bytes).unwrap();
    let out = cli()
        .arg("trace")
        .arg("info")
        .arg(&victim)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));

    // A store with no corpus manifest cannot be re-mined.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = cli().arg("trace").arg("mine").arg(&empty).output().unwrap();
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_record_writes_a_readable_stc_file() {
    let dir = workdir("record");
    let app = dir.join("app.s");
    std::fs::write(
        &app,
        "\
.handler TIMER0 on_timer
main:
 ldi r1, 40
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
on_timer:
 reti
",
    )
    .unwrap();
    let stc = dir.join("app.stc");
    let (recorded, _) = run_ok(
        cli()
            .arg("trace")
            .arg("record")
            .arg(&app)
            .args(["--cycles", "200000", "--out"])
            .arg(&stc),
    );
    assert!(stc.exists());
    assert!(recorded.contains("events"), "record output: {recorded}");

    let (info, _) = run_ok(cli().arg("trace").arg("info").arg(&stc));
    assert!(info.contains("TIMER0"), "info output: {info}");

    std::fs::remove_dir_all(&dir).ok();
}
