//! Crash-consistency acceptance suite: for every crash site the store
//! publishes through (manifest commit, shard ingestion, index merge)
//! and several derivation seeds, a workload killed mid-write must
//! recover — via `TraceStore::recover()` — into a corpus whose re-mined
//! digest is byte-identical to an uninterrupted run's. The same
//! contract is exercised through the CLI: a multi-writer `campaign
//! --store --writers W` produces the identical document and index for
//! every W, survives `trace fsck`, and compacts with `trace merge`
//! without changing the corpus digest.

mod support;

use sentomist::core::chaos::{crash_then_recover, ingest_workload, remine_digest, CrashSite};
use sentomist::tinyvm::LifecycleItem;
use sentomist::trace::Trace;
use sentomist::tracestore::TraceStore;
use support::{cli, ev, run_ok, workdir};

/// A deterministic workload trace: pure function of the seed, protocol
/// valid, with enough bytes that any write class has a real crash
/// window.
fn crash_trace(seed: u64) -> Trace {
    let n = 2 + (seed % 4) as usize;
    let mut cycle = 0u64;
    let events = (0..n)
        .map(|i| {
            cycle += 11 + seed.wrapping_mul(7).wrapping_add(i as u64) % 512;
            let item = if i % 2 == 0 {
                LifecycleItem::Int((seed % 8) as u8)
            } else {
                LifecycleItem::Reti
            };
            ev(cycle, item)
        })
        .collect();
    let segments = (0..=n)
        .map(|i| {
            (0..6)
                .map(|p| ((seed >> p) as u32 ^ i as u32) % 31)
                .collect()
        })
        .collect();
    Trace {
        events,
        segments,
        program_len: 6,
    }
}

/// The full matrix: every crash site × three derivation seeds. Each
/// cell tears a different byte offset inside the site's write class;
/// all of them must recover to the uninterrupted corpus digest.
#[test]
fn every_crash_site_recovers_to_the_baseline_corpus() {
    let root = workdir("store-crash-matrix");
    let seeds: Vec<u64> = (1..=8).collect();
    for site in CrashSite::ALL {
        for crash_seed in [11u64, 22, 33] {
            let cell = root.join(format!("{}-{crash_seed}", site.slug()));
            let workload = ingest_workload(seeds.clone(), 2, crash_trace);
            let outcome = crash_then_recover(&cell, site, crash_seed, workload)
                .unwrap_or_else(|e| panic!("{} seed {crash_seed}: {e}", site.slug()));
            assert!(outcome.class_bytes > 0, "{} wrote nothing", site.slug());
            assert!(outcome.offset < outcome.class_bytes);
            assert!(
                outcome.digests_match(),
                "{} seed {crash_seed}: recovered {:016x} != baseline {:016x} \
                 (tore at byte {} of {}, report {:?})",
                site.slug(),
                outcome.recovered_digest,
                outcome.baseline_digest,
                outcome.offset,
                outcome.class_bytes,
                outcome.report,
            );
        }
    }
}

/// The crash matrix is a pure function of its seeds: running the same
/// cell twice (fresh directories) reproduces the same torn offset and
/// the same recovered digest.
#[test]
fn crash_cells_are_deterministic() {
    let root = workdir("store-crash-determinism");
    let seeds: Vec<u64> = (1..=5).collect();
    for site in CrashSite::ALL {
        let a = crash_then_recover(
            &root.join(format!("{}-a", site.slug())),
            site,
            99,
            ingest_workload(seeds.clone(), 3, crash_trace),
        )
        .unwrap();
        let b = crash_then_recover(
            &root.join(format!("{}-b", site.slug())),
            site,
            99,
            ingest_workload(seeds.clone(), 3, crash_trace),
        )
        .unwrap();
        assert_eq!(a.offset, b.offset, "{}: offset drifted", site.slug());
        assert_eq!(a.baseline_digest, b.baseline_digest);
        assert_eq!(a.recovered_digest, b.recovered_digest);
    }
}

/// CLI contract: the campaign document, the re-mined document and the
/// merged index are byte-identical for every `--writers` value, and
/// `trace merge` flattens the shards without changing the corpus.
#[test]
fn cli_multi_writer_campaign_is_topology_independent() {
    let root = workdir("store-crash-cli");
    let store1 = root.join("w1");
    let store4 = root.join("w4");
    let campaign = |store: &std::path::Path, writers: &str| {
        let mut cmd = cli();
        cmd.args([
            "campaign",
            "--seeds",
            "4",
            "--base-seed",
            "300",
            "--seconds",
            "2",
            "--json",
            "--store",
        ])
        .arg(store)
        .args(["--writers", writers]);
        run_ok(&mut cmd).0
    };
    let doc1 = campaign(&store1, "1");
    let doc4 = campaign(&store4, "4");
    assert_eq!(doc1, doc4, "--writers leaked into the document");

    // Same runs, same index content, regardless of where they landed.
    let s1 = TraceStore::open(&store1).unwrap();
    let s4 = TraceStore::open(&store4).unwrap();
    assert_eq!(s1.run_ids().unwrap(), s4.run_ids().unwrap());
    let digest_before = remine_digest(&s4).unwrap();
    assert_eq!(remine_digest(&s1).unwrap(), digest_before);
    assert!(!s4.shard_ids().unwrap().is_empty(), "expected shards");

    // fsck: both corpora are clean as written.
    run_ok(cli().arg("trace").arg("fsck").arg(&store4));

    // merge: flattens the shards, corpus digest unchanged.
    run_ok(cli().arg("trace").arg("merge").arg(&store4));
    let s4 = TraceStore::open(&store4).unwrap();
    assert!(s4.shard_ids().unwrap().is_empty(), "shards survived merge");
    assert_eq!(remine_digest(&s4).unwrap(), digest_before);

    // The re-mined documents agree with each other (and the live ones).
    let mine =
        |store: &std::path::Path| run_ok(cli().arg("trace").arg("mine").arg(store).arg("--json")).0;
    assert_eq!(mine(&store1), mine(&store4));
    assert_eq!(mine(&store1), doc1);
}

/// CLI contract: `trace fsck` exits nonzero on a damaged store (the CI
/// tripwire), repairs it with `--repair`, and the quarantined run shows
/// up in `trace quarantine ls`.
#[test]
fn cli_fsck_repairs_a_damaged_store() {
    let root = workdir("store-crash-fsck");
    let store_dir = root.join("store");
    run_ok(
        cli()
            .args([
                "campaign",
                "--seeds",
                "3",
                "--base-seed",
                "700",
                "--seconds",
                "2",
                "--store",
            ])
            .arg(&store_dir),
    );

    // Tear one run's trace file and drop an orphan temp file — the two
    // damage classes a died writer leaves behind.
    let victim = store_dir.join("runs/seed-00000000000000000701/node-000.stc");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(store_dir.join("orphan.tmp"), b"{").unwrap();

    let dry = cli()
        .arg("trace")
        .arg("fsck")
        .arg(&store_dir)
        .output()
        .unwrap();
    assert!(!dry.status.success(), "dry-run fsck must flag damage");

    run_ok(
        cli()
            .arg("trace")
            .arg("fsck")
            .arg(&store_dir)
            .arg("--repair"),
    );
    run_ok(cli().arg("trace").arg("fsck").arg(&store_dir)); // now clean
    assert!(!store_dir.join("orphan.tmp").exists());

    let (ls, _) = run_ok(cli().args(["trace", "quarantine", "ls"]).arg(&store_dir));
    assert!(
        ls.contains("seed-00000000000000000701"),
        "quarantine ls missed the torn run:\n{ls}"
    );

    // The surviving runs still mine.
    run_ok(
        cli()
            .args(["trace", "mine"])
            .arg(&store_dir)
            .args(["--json", "--quarantine"]),
    );
}
