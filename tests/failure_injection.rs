//! Failure injection across the stack: corrupted traces, faulting nodes
//! inside a network, queue exhaustion, and truncation — every layer must
//! fail loudly and precisely, never silently misanalyze.

mod support;

use sentomist::netsim::{LinkConfig, NetSim, SimError, Topology};
use sentomist::tinyvm::{self, devices::NodeConfig, node::Node, LifecycleItem, TaskId, VmError};
use sentomist::trace::{extract, ExtractError, Recorder, Trace};
use std::sync::Arc;
use support::ev;

#[test]
fn fifo_violating_trace_is_rejected_not_misattributed() {
    // A corrupted trace where the ordinal-matched post and run disagree on
    // task ids (impossible under a FIFO scheduler).
    let trace = Trace {
        events: vec![
            ev(0, LifecycleItem::Int(0)),
            ev(1, LifecycleItem::PostTask(TaskId(1))),
            ev(2, LifecycleItem::PostTask(TaskId(2))),
            ev(3, LifecycleItem::Reti),
            ev(4, LifecycleItem::RunTask(TaskId(2))), // swapped!
            ev(5, LifecycleItem::TaskEnd(TaskId(2))),
            ev(6, LifecycleItem::RunTask(TaskId(1))),
            ev(7, LifecycleItem::TaskEnd(TaskId(1))),
        ],
        segments: vec![vec![]; 9],
        program_len: 0,
    };
    assert!(matches!(
        extract(&trace),
        Err(ExtractError::FifoViolation { .. })
    ));
}

#[test]
fn task_running_inside_handler_is_rejected() {
    // A runTask between int and reti violates the concurrency model.
    let trace = Trace {
        events: vec![
            ev(0, LifecycleItem::PostTask(TaskId(0))),
            ev(1, LifecycleItem::Int(0)),
            ev(2, LifecycleItem::RunTask(TaskId(0))),
            ev(3, LifecycleItem::Reti),
        ],
        segments: vec![vec![]; 5],
        program_len: 0,
    };
    assert!(matches!(extract(&trace), Err(ExtractError::Grammar(_))));
}

#[test]
fn mid_simulation_node_fault_reports_the_right_node() {
    // Node 1 faults (bad port) after ~1 simulated second; node 0 is fine.
    let healthy = Arc::new(
        tinyvm::assemble(
            "\
.handler TIMER0 h
main:
 ldi r1, 40
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 reti
",
        )
        .unwrap(),
    );
    let faulty = Arc::new(
        tinyvm::assemble(
            "\
.handler TIMER0 h
.data n 1
main:
 ldi r1, 400
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 lda r1, n
 addi r1, 1
 sta n, r1
 cmpi r1, 10
 brne ok
 in r2, 0x7E          ; boom on the 10th fire
ok:
 reti
",
        )
        .unwrap(),
    );
    let mut topo = Topology::new(2);
    topo.connect(0, 1, LinkConfig::default()).unwrap();
    let mut sim = NetSim::new(topo, 1);
    sim.add_node(healthy, NodeConfig::default()).unwrap();
    sim.add_node(
        faulty,
        NodeConfig {
            node_id: 1,
            ..NodeConfig::default()
        },
    )
    .unwrap();
    let mut sinks = vec![tinyvm::NullSink, tinyvm::NullSink];
    match sim.run(20_000_000, &mut sinks) {
        Err(SimError::NodeFault {
            node: 1,
            error: VmError::BadPort { port: 0x7E, .. },
        }) => {}
        other => panic!("expected node-1 BadPort fault, got {other:?}"),
    }
    // The faulting node stopped early; the healthy node kept running up to
    // the moment the simulation aborted.
    assert!(sim.node(1).halted());
    assert!(!sim.node(0).halted());
}

#[test]
fn fault_trace_remains_analyzable_up_to_the_fault() {
    // Even when a program faults, the trace recorded so far is well
    // formed and extraction works on it.
    let program = Arc::new(
        tinyvm::assemble(
            "\
.handler TIMER0 h
.data n 1
main:
 ldi r1, 20
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 lda r1, n
 addi r1, 1
 sta n, r1
 cmpi r1, 5
 brne ok
 in r2, 0x7E
ok:
 reti
",
        )
        .unwrap(),
    );
    let mut node = Node::new(program.clone(), NodeConfig::default());
    let mut rec = Recorder::new(program.len());
    let err = node.run(10_000_000, &mut rec).unwrap_err();
    assert!(matches!(err, VmError::BadPort { .. }));
    let trace = rec.into_trace(); // run() flushed the final segment
    let x = extract(&trace).unwrap();
    assert_eq!(x.intervals.len(), 4, "four clean firings before the fault");
    assert_eq!(x.incomplete, 1, "the faulting handler never returned");
}

#[test]
fn queue_exhaustion_is_a_fault_not_a_silent_drop() {
    let program = Arc::new(
        tinyvm::assemble(
            "\
.handler TIMER0 h
.task t
main:
 ldi r1, 1
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 post t
 post t
 post t
 reti
t:
 ldi r2, 4000
spin:
 subi r2, 1
 brne spin
 ret
",
        )
        .unwrap(),
    );
    // Posts outpace execution threefold: the queue must eventually fill
    // and the VM must say so (TinyOS 1.x semantics: every post enqueues).
    let mut node = Node::new(
        program,
        NodeConfig {
            task_queue_capacity: 8,
            ..NodeConfig::default()
        },
    );
    let err = node.run(10_000_000, &mut tinyvm::NullSink).unwrap_err();
    assert!(matches!(err, VmError::TaskQueueFull { .. }));
}

#[test]
fn malformed_trace_json_is_rejected_by_deserialization() {
    let garbage = r#"{"events": [{"cycle": 1}], "segments": [], "program_len": 3}"#;
    assert!(serde_json::from_str::<Trace>(garbage).is_err());
}
