//! Static interleaving analysis, validated against the bundled apps'
//! ground-truth bug sites: each buggy variant must produce exactly the
//! pinned warning at the injected defect, each fixed variant must lint
//! clean, and the static report must corroborate dynamic localization.

use sentomist::apps::{ctp, forwarder, oscilloscope};
use sentomist::core::{corroborate, harvest_set, localize_set, Pipeline, SampleIndex};
use sentomist::netsim::{LinkConfig, NetSim, Topology};
use sentomist::staticlint::{lint, Cfg, ContextMap, LintReport, WarningKind};
use sentomist::tinyvm::{devices::NodeConfig, isa::irq, node::Node, Program};
use sentomist::trace::Recorder;
use std::sync::Arc;

fn bundled(name: &str, fixed: bool) -> Arc<Program> {
    match (name, fixed) {
        ("oscilloscope", false) => oscilloscope::buggy(&Default::default()),
        ("oscilloscope", true) => oscilloscope::fixed(&Default::default()),
        ("forwarder", false) => forwarder::relay_program_buggy(),
        ("forwarder", true) => forwarder::relay_program_fixed(),
        ("ctp", false) => ctp::buggy(&Default::default()),
        ("ctp", true) => ctp::fixed(&Default::default()),
        _ => unreachable!("unknown app {name}"),
    }
    .unwrap()
}

/// The ground truth of each injected bug: app, expected warning kind and
/// the routine holding the defect.
const GROUND_TRUTH: &[(&str, WarningKind, &str)] = &[
    (
        "oscilloscope",
        WarningKind::UnprotectedSharedWrite,
        "on_read_done",
    ),
    ("forwarder", WarningKind::ActiveDrop, "fwd_drop"),
    ("ctp", WarningKind::BusyFlagLeak, "ctp_fail"),
];

#[test]
fn buggy_apps_flag_exactly_the_injected_bug_site() {
    for &(name, kind, routine) in GROUND_TRUTH {
        let report = lint(&bundled(name, false));
        assert_eq!(
            report.warnings.len(),
            1,
            "{name}: expected exactly one warning, got {:?}",
            report.warnings
        );
        let w = &report.warnings[0];
        assert_eq!(w.kind, kind, "{name}: wrong warning kind");
        assert_eq!(
            w.routine.as_deref(),
            Some(routine),
            "{name}: warning not anchored at the bug routine"
        );
        assert!(w.source_line.is_some(), "{name}: no source line");
        assert!(!w.message.is_empty(), "{name}: empty message");
    }
}

#[test]
fn fixed_apps_lint_clean() {
    for &(name, _, _) in GROUND_TRUTH {
        let report = lint(&bundled(name, true));
        assert!(
            report.warnings.is_empty(),
            "{name} (fixed): spurious warnings {:?}",
            report.warnings
        );
    }
}

/// The JSON emitted by `sentomist lint --app <name> --json` is pinned by
/// golden fixtures; regenerate with
/// `cargo run --release -- lint --app <name> --json`.
#[test]
fn lint_json_matches_golden_fixtures() {
    for &(name, _, _) in GROUND_TRUTH {
        let report = lint(&bundled(name, false));
        let got = serde_json::to_string_pretty(&report).unwrap();
        let path = format!(
            "{}/tests/fixtures/lint_{name}.json",
            env!("CARGO_MANIFEST_DIR")
        );
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {path}: {e}"));
        assert_eq!(
            got.trim(),
            want.trim(),
            "{name}: lint JSON drifted from {path}; regenerate if intentional"
        );
    }
}

/// The JSON emitted by `sentomist slice --app <name> --json` is pinned
/// byte-for-byte by golden fixtures — the same document the daemon's
/// `Slice` job serves. Regenerate intentionally drifted ones with
/// `UPDATE_FIXTURES=1 cargo test --test lint`.
#[test]
fn slice_json_matches_golden_fixtures() {
    for &(name, _, _) in GROUND_TRUTH {
        let got = sentomist::apps::slice_document(name, false, &[]).unwrap();
        let path = format!(
            "{}/tests/fixtures/slice_{name}.json",
            env!("CARGO_MANIFEST_DIR")
        );
        if std::env::var("UPDATE_FIXTURES").is_ok() {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {path}: {e}"));
        assert_eq!(
            got, want,
            "{name}: slice JSON drifted from {path}; regenerate with \
             UPDATE_FIXTURES=1 if intentional"
        );
    }
}

/// Round-trip sanity on the same serialization the fixtures pin.
#[test]
fn lint_report_survives_json() {
    let report = lint(&bundled("ctp", false));
    let json = serde_json::to_string(&report).unwrap();
    let back: LintReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

/// Every instruction that actually executes in an emulated run must lie
/// in a basic block the analyzer considers reachable from some context —
/// the static CFG over-approximates, never under-approximates, real
/// executions.
#[test]
fn executed_instructions_lie_in_reachable_blocks() {
    let program = bundled("oscilloscope", false);
    let mut node = Node::new(program.clone(), NodeConfig::default());
    let mut rec = Recorder::new(program.len());
    node.run(2_000_000, &mut rec).unwrap();
    let trace = rec.into_trace();

    let mut counts = vec![0u64; program.len()];
    for seg in &trace.segments {
        for (c, &v) in counts.iter_mut().zip(seg.iter()) {
            *c += u64::from(v);
        }
    }
    assert!(counts.iter().any(|&c| c > 0), "nothing executed");

    let cfg = Cfg::build(&program);
    let ctx = ContextMap::build(&program, &cfg);
    for (pc, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let block = cfg.block_of(pc as u16);
        assert!(
            ctx.reachable_anywhere(block),
            "pc {pc} executed {count} times but its block {block} is \
             statically unreachable"
        );
    }
}

/// The fusion acceptance case: after mining flags the relay's anomalous
/// packet-arrival interval, corroborating the localization against the
/// static report must put a statically-flagged instruction at rank 1 —
/// and it is the active-drop site.
#[test]
fn corroboration_ranks_the_static_bug_site_first() {
    // Case study II, run manually so we keep the relay program and trace.
    let relay = bundled("forwarder", false);
    let mut sim = NetSim::new(Topology::chain(3, LinkConfig::default()).unwrap(), 0);
    sim.add_node(
        forwarder::sink_program().unwrap(),
        forwarder::node_config(forwarder::nodes::SINK, 0),
    )
    .unwrap();
    sim.add_node(
        relay.clone(),
        forwarder::node_config(forwarder::nodes::RELAY, 1),
    )
    .unwrap();
    sim.add_node(
        forwarder::source_program(&forwarder::ForwarderParams::default()).unwrap(),
        forwarder::node_config(forwarder::nodes::SOURCE, 2),
    )
    .unwrap();
    let mut recorders = vec![
        Recorder::new(sim.node(0).program().len()),
        Recorder::new(relay.len()),
        Recorder::new(sim.node(2).program().len()),
    ];
    sim.run(20_000_000, &mut recorders).unwrap();
    let trace = recorders.swap_remove(1).into_trace();

    let samples = harvest_set(&trace, irq::RX, |s, _| SampleIndex::Seq(s)).unwrap();
    let report = Pipeline::default_ocsvm(0.05)
        .rank_set(samples.clone())
        .unwrap();
    let top = report.ranking[0].index;
    let flagged = samples.meta.iter().position(|m| m.index == top).unwrap();

    let hits = localize_set(&samples, flagged, &relay, 1.0);
    assert!(!hits.is_empty(), "no implicated instructions");
    let static_report = lint(&relay);
    let fused = corroborate(&hits, &static_report);

    assert!(
        fused[0].corroborated(),
        "rank 1 is not statically flagged; top: pc {} {:?}",
        fused[0].hit.pc,
        fused[0].hit.routine
    );
    assert_eq!(fused[0].hit.routine.as_deref(), Some("fwd_drop"));
    assert!(fused[0].warning_kinds.contains(&WarningKind::ActiveDrop));
    // Corroborated hits strictly precede uncorroborated ones.
    let first_plain = fused.iter().position(|f| !f.corroborated());
    if let Some(i) = first_plain {
        assert!(fused[..i].iter().all(|f| f.corroborated()));
        assert!(fused[i..].iter().all(|f| !f.corroborated()));
    }
}
