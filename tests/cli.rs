//! End-to-end tests of the `sentomist` CLI binary: the assemble → run →
//! mine → localize workflow through real process invocations.

mod support;

use support::{cli, workdir};

const APP: &str = "\
.handler TIMER0 on_timer
.handler ADC on_adc
.task send
.data buf 3
.data idx 1
main:
 ldi r1, 78
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
on_timer:
 ldi r1, 1
 out ADC_CTRL, r1
 reti
on_adc:
 in r1, ADC_DATA
 lda r2, idx
 ldi r3, buf
 add r3, r2
 st [r3], r1
 addi r2, 1
 sta idx, r2
 cmpi r2, 3
 brne done
 ldi r2, 0
 sta idx, r2
 post send
done:
 reti
send:
 lda r1, buf
 out RADIO_TX_PUSH, r1
 ldi r2, 0xFFFF
 out RADIO_SEND, r2
 ret
";

#[test]
fn assemble_run_mine_localize_workflow() {
    let dir = workdir("cli-workflow");
    let app = dir.join("app.s");
    let trace = dir.join("app.trace.json");
    std::fs::write(&app, APP).unwrap();

    // assemble
    let out = cli().arg("assemble").arg(&app).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(listing.contains("on_adc:"));
    assert!(listing.contains("26 instructions"));

    // run
    let out = cli()
        .args(["run"])
        .arg(&app)
        .args(["--cycles", "2000000", "--seed", "7", "--trace"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // mine (with CSV export)
    let csv = dir.join("ranking.csv");
    let out = cli()
        .args(["mine"])
        .arg(&trace)
        .args(["--irq", "2", "--top", "3", "--csv"])
        .arg(&csv)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("intervals of 2 (ADC)"));
    assert!(table.contains("Instance Index"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("rank,index,score"));
    assert!(csv_text.lines().count() > 50);

    // profile
    let out = cli()
        .args(["profile"])
        .arg(&trace)
        .arg(&app)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prof = String::from_utf8_lossy(&out.stdout);
    assert!(prof.contains("routine"));
    assert!(prof.contains("on_adc"));
    assert!(prof.contains("total"));

    // localize
    let out = cli()
        .args(["localize"])
        .arg(&trace)
        .arg(&app)
        .args(["--irq", "2", "--rank", "1", "--min-z", "0.5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let loc = String::from_utf8_lossy(&out.stdout);
    assert!(loc.contains("deviating instructions"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    // No args: usage on stderr, nonzero exit.
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = cli()
        .args(["assemble", "/nonexistent/x.s"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Bad detector name.
    let dir = workdir("cli-bad-detector");
    let app = dir.join("mini.s");
    let trace = dir.join("mini.trace.json");
    std::fs::write(&app, APP).unwrap();
    let ok = cli()
        .args(["run"])
        .arg(&app)
        .args(["--cycles", "500000", "--trace"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(ok.status.success());
    let out = cli()
        .args(["mine"])
        .arg(&trace)
        .args(["--irq", "2", "--detector", "psychic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown detector"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn case_subcommand_reproduces_figure_5b() {
    let out = cli().args(["case", "2"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Instance Index"));
    assert!(text.contains("true symptoms at ranks [1, 2, 3]"));
}

#[test]
fn assembly_error_reports_line() {
    let dir = workdir("cli-asm-error");
    let app = dir.join("broken.s");
    std::fs::write(&app, "main:\n frob r1\n").unwrap();
    let out = cli().arg("assemble").arg(&app).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommands_print_usage_to_stderr_and_exit_nonzero() {
    // Every unknown- or missing-subcommand branch: nonzero exit, the
    // full usage text on stderr, and a clean stdout (pipelines must
    // never see usage prose where JSON belongs).
    for args in [
        vec!["bogus"],
        vec!["trace"],
        vec!["trace", "bogus"],
        vec!["trace", "quarantine", "bogus"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(
            !out.status.success(),
            "`sentomist {}` should exit nonzero",
            args.join(" ")
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("USAGE:"),
            "`sentomist {}` stderr lacks the usage text:\n{stderr}",
            args.join(" ")
        );
        assert!(
            stderr.contains("error:"),
            "`sentomist {}` stderr lacks the short error line:\n{stderr}",
            args.join(" ")
        );
        assert!(
            out.stdout.is_empty(),
            "`sentomist {}` leaked onto stdout: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
