//! End-to-end tests of the `sentomist` CLI binary: the assemble → run →
//! mine → localize workflow through real process invocations.

mod support;

use support::{cli, workdir};

const APP: &str = "\
.handler TIMER0 on_timer
.handler ADC on_adc
.task send
.data buf 3
.data idx 1
main:
 ldi r1, 78
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
on_timer:
 ldi r1, 1
 out ADC_CTRL, r1
 reti
on_adc:
 in r1, ADC_DATA
 lda r2, idx
 ldi r3, buf
 add r3, r2
 st [r3], r1
 addi r2, 1
 sta idx, r2
 cmpi r2, 3
 brne done
 ldi r2, 0
 sta idx, r2
 post send
done:
 reti
send:
 lda r1, buf
 out RADIO_TX_PUSH, r1
 ldi r2, 0xFFFF
 out RADIO_SEND, r2
 ret
";

#[test]
fn assemble_run_mine_localize_workflow() {
    let dir = workdir("cli-workflow");
    let app = dir.join("app.s");
    let trace = dir.join("app.trace.json");
    std::fs::write(&app, APP).unwrap();

    // assemble
    let out = cli().arg("assemble").arg(&app).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(listing.contains("on_adc:"));
    assert!(listing.contains("26 instructions"));

    // run
    let out = cli()
        .args(["run"])
        .arg(&app)
        .args(["--cycles", "2000000", "--seed", "7", "--trace"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // mine (with CSV export)
    let csv = dir.join("ranking.csv");
    let out = cli()
        .args(["mine"])
        .arg(&trace)
        .args(["--irq", "2", "--top", "3", "--csv"])
        .arg(&csv)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("intervals of 2 (ADC)"));
    assert!(table.contains("Instance Index"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("rank,index,score"));
    assert!(csv_text.lines().count() > 50);

    // profile
    let out = cli()
        .args(["profile"])
        .arg(&trace)
        .arg(&app)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prof = String::from_utf8_lossy(&out.stdout);
    assert!(prof.contains("routine"));
    assert!(prof.contains("on_adc"));
    assert!(prof.contains("total"));

    // localize
    let out = cli()
        .args(["localize"])
        .arg(&trace)
        .arg(&app)
        .args(["--irq", "2", "--rank", "1", "--min-z", "0.5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let loc = String::from_utf8_lossy(&out.stdout);
    assert!(loc.contains("deviating instructions"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    // No args: usage on stderr, nonzero exit.
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = cli()
        .args(["assemble", "/nonexistent/x.s"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Bad detector name.
    let dir = workdir("cli-bad-detector");
    let app = dir.join("mini.s");
    let trace = dir.join("mini.trace.json");
    std::fs::write(&app, APP).unwrap();
    let ok = cli()
        .args(["run"])
        .arg(&app)
        .args(["--cycles", "500000", "--trace"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(ok.status.success());
    let out = cli()
        .args(["mine"])
        .arg(&trace)
        .args(["--irq", "2", "--detector", "psychic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown detector"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn case_subcommand_reproduces_figure_5b() {
    let out = cli().args(["case", "2"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Instance Index"));
    assert!(text.contains("true symptoms at ranks [1, 2, 3]"));
}

#[test]
fn assembly_error_reports_line() {
    let dir = workdir("cli-asm-error");
    let app = dir.join("broken.s");
    std::fs::write(&app, "main:\n frob r1\n").unwrap();
    let out = cli().arg("assemble").arg(&app).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `trace`, `hunt`, `lint`, and `slice` reject flags they do not
/// understand instead of silently ignoring them: usage on stderr,
/// nonzero exit, nothing on stdout.
#[test]
fn unknown_flags_are_rejected_with_usage() {
    for args in [
        vec!["lint", "--app", "forwarder", "--bogus"],
        vec!["slice", "--app", "forwarder", "--bogus"],
        vec!["hunt", "--bogus", "--iterations", "1"],
        vec!["trace", "ls", "--bogus"],
        vec!["trace", "record", "--bogus"],
        vec!["trace", "mine", "--bogus"],
        vec!["trace", "fsck", "--bogus"],
        vec!["trace", "info", "--bogus"],
        vec!["trace", "merge", "--bogus"],
        vec!["trace", "quarantine", "ls", "--bogus"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(
            !out.status.success(),
            "`sentomist {}` should exit nonzero",
            args.join(" ")
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown flag `--bogus`"),
            "`sentomist {}` stderr lacks the unknown-flag error:\n{stderr}",
            args.join(" ")
        );
        assert!(
            stderr.contains("USAGE:"),
            "`sentomist {}` stderr lacks the usage text:\n{stderr}",
            args.join(" ")
        );
        assert!(
            out.stdout.is_empty(),
            "`sentomist {}` leaked onto stdout: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

/// `sentomist slice --app <name> --json` and `lint --app <name> --json`
/// must emit exactly the pinned golden fixtures — the same bytes the
/// mining daemon serves for the matching jobs.
#[test]
fn slice_and_lint_json_match_the_golden_fixtures() {
    for app in ["oscilloscope", "forwarder", "ctp"] {
        let out = cli()
            .args(["slice", "--app", app, "--json"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let fixture = format!(
            "{}/tests/fixtures/slice_{app}.json",
            env!("CARGO_MANIFEST_DIR")
        );
        let want = std::fs::read_to_string(&fixture).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            want,
            "{app}: `slice --app {app} --json` drifted from {fixture}"
        );

        let out = cli()
            .args(["lint", "--app", app, "--json"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let fixture = format!(
            "{}/tests/fixtures/lint_{app}.json",
            env!("CARGO_MANIFEST_DIR")
        );
        let want = std::fs::read_to_string(&fixture).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            want.trim(),
            "{app}: `lint --app {app} --json` drifted from {fixture}"
        );
    }
}

/// The slice command on a source file: explicit `--pc` seeds produce a
/// human-readable backward slice with the seed instruction in it.
#[test]
fn slice_command_slices_assembly_files() {
    let dir = workdir("cli-slice");
    let app = dir.join("app.s");
    std::fs::write(&app, APP).unwrap();

    // pc 21 is `lda r1, buf` in `send` — its slice must pull in the
    // interrupt handler's buffer writes.
    let out = cli()
        .arg("slice")
        .arg(&app)
        .args(["--pc", "21"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("backward slice from [21]"), "stdout: {text}");
    assert!(text.contains("on_adc"), "slice misses the handler: {text}");

    // A seed outside the program is a typed error, not a panic.
    let out = cli()
        .arg("slice")
        .arg(&app)
        .args(["--pc", "9999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("9999"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `mine --causal` and `localize --causal` run end to end on a recorded
/// trace, and `mine --causal` without `--corroborate` is refused.
#[test]
fn causal_flags_work_end_to_end() {
    let dir = workdir("cli-causal");
    let app = dir.join("app.s");
    let trace = dir.join("app.trace.json");
    std::fs::write(&app, APP).unwrap();
    let out = cli()
        .args(["run"])
        .arg(&app)
        .args(["--cycles", "2000000", "--seed", "7", "--trace"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --causal needs the static report to anchor against.
    let out = cli()
        .args(["mine"])
        .arg(&trace)
        .args(["--irq", "2", "--causal"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--corroborate"));

    let out = cli()
        .args(["mine"])
        .arg(&trace)
        .args(["--irq", "2", "--corroborate"])
        .arg(&app)
        .arg("--causal")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("causal chain"), "stdout: {text}");

    let out = cli()
        .args(["localize"])
        .arg(&trace)
        .arg(&app)
        .args(["--irq", "2", "--rank", "1", "--causal"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("causal chain"), "stdout: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommands_print_usage_to_stderr_and_exit_nonzero() {
    // Every unknown- or missing-subcommand branch: nonzero exit, the
    // full usage text on stderr, and a clean stdout (pipelines must
    // never see usage prose where JSON belongs).
    for args in [
        vec!["bogus"],
        vec!["trace"],
        vec!["trace", "bogus"],
        vec!["trace", "quarantine", "bogus"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(
            !out.status.success(),
            "`sentomist {}` should exit nonzero",
            args.join(" ")
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("USAGE:"),
            "`sentomist {}` stderr lacks the usage text:\n{stderr}",
            args.join(" ")
        );
        assert!(
            stderr.contains("error:"),
            "`sentomist {}` stderr lacks the short error line:\n{stderr}",
            args.join(" ")
        );
        assert!(
            out.stdout.is_empty(),
            "`sentomist {}` leaked onto stdout: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
