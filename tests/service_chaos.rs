//! The wire-fault soak: `sentomistd` under a deterministic, seeded
//! storm of TCP faults — mid-frame disconnects, split writes,
//! slow-loris stalls, half-close truncations, single-byte corruption —
//! injected by the in-process chaos proxy.
//!
//! What must hold, for every fault plan in the pinned sweep:
//!
//! * the daemon never hangs past its read deadline (slow-loris cuts
//!   are asserted with a margin), never leaks a handler thread (the
//!   [`ShutdownReport`] accounting is exact), and survives every
//!   malformed, truncated or corrupted stream with a typed answer;
//! * a request that eventually succeeds through client retries returns
//!   bytes **identical** to the offline `trace mine --json` document —
//!   the wire may be hostile, the answer may not.

mod support;

use sentomist::service::{
    encode_frame, payload_checksum, read_frame, request_with_retry, write_frame, ChaosProxy,
    Client, ClientConfig, FaultPlan, FrameKind, Request, Response, RetryPolicy, Server,
    ServiceConfig, WireFault, HEADER_LEN,
};
use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use support::{cli, run_ok, workdir};

/// The pinned soak seed: every fault in this file's sweep derives from
/// it, so a failure reproduces bit-for-bit.
const SOAK_SEED: u64 = 0x53_4E_54_4D; // "SNTM"

fn record_corpus(store: &Path) -> String {
    run_ok(cli().args([
        "campaign",
        "--seeds",
        "3",
        "--seconds",
        "1",
        "--writers",
        "1",
        "--json",
        "--store",
        store.to_str().unwrap(),
    ]));
    let (stdout, _) = run_ok(cli().args(["trace", "mine", store.to_str().unwrap(), "--json"]));
    stdout
}

/// An in-process daemon shaped for the soak: tight read deadline so
/// stalls cut fast, generous queue so backpressure never masks wire
/// behavior.
fn soak_server() -> Server {
    Server::start(ServiceConfig {
        workers: 2,
        read_timeout: Some(Duration::from_millis(800)),
        write_timeout: Some(Duration::from_secs(5)),
        ..ServiceConfig::default()
    })
    .expect("starting in-process daemon")
}

fn soak_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_millis(1500)),
        write_timeout: Some(Duration::from_secs(2)),
    }
}

#[test]
fn soak_idempotent_requests_converge_through_every_fault_plan() {
    let dir = workdir("chaos-soak");
    let store = dir.join("corpus");
    let offline = record_corpus(&store);

    let server = soak_server();
    let mut plan = FaultPlan::new(SOAK_SEED, 0.6);
    plan.max_stall = Duration::from_secs(2);
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("starting chaos proxy");
    let addr = proxy.local_addr().to_string();

    let config = soak_client_config();
    let policy = RetryPolicy {
        max_retries: 10,
        backoff_base_ms: 5,
        seed: SOAK_SEED,
    };
    let requests: Vec<(&str, Request)> = vec![
        ("ping", Request::Ping),
        (
            "lint",
            Request::Lint {
                app: "forwarder".into(),
                fixed: false,
            },
        ),
        ("stats", Request::Stats),
        (
            "mine",
            Request::Mine {
                store: store.to_str().unwrap().to_string(),
                quarantine: false,
            },
        ),
    ];

    let mut total_retries = 0u32;
    for round in 0..8 {
        for (label, request) in &requests {
            let (response, stats) = request_with_retry(addr.as_str(), request, &config, &policy)
                .unwrap_or_else(|e| {
                    panic!("{label} round {round} never converged: {e} (seed {SOAK_SEED:#x})")
                });
            total_retries += stats.retries;
            let payload = match response {
                Response::Ok(payload) => payload,
                other => panic!("{label} round {round} answered {other:?}"),
            };
            match *label {
                "ping" => assert_eq!(payload, b"pong\n"),
                // The acceptance bar: bytes that survived disconnects,
                // corruption and stalls equal the offline document.
                "mine" => assert_eq!(
                    payload,
                    offline.as_bytes(),
                    "mine through chaos differs from offline trace mine"
                ),
                _ => assert!(!payload.is_empty()),
            }
        }
    }

    let proxy_stats = proxy.stats();
    assert!(
        proxy_stats.faulted_connections > 0,
        "the sweep never exercised a fault: {proxy_stats:?}"
    );
    let injected = proxy_stats.disconnects
        + proxy_stats.splits
        + proxy_stats.stalls
        + proxy_stats.truncations
        + proxy_stats.corruptions;
    assert!(injected > 0, "no fault actually fired: {proxy_stats:?}");
    assert!(
        total_retries > 0,
        "a 0.6 fault rate should have forced at least one retry"
    );

    proxy.shutdown_and_join();
    let report = server.shutdown_and_join();
    assert!(
        report.clean(),
        "daemon leaked or panicked handler threads: {report:?}"
    );
}

#[test]
fn slow_loris_is_cut_at_the_read_deadline_with_margin() {
    let deadline = Duration::from_millis(400);
    let server = Server::start(ServiceConfig {
        read_timeout: Some(deadline),
        ..ServiceConfig::default()
    })
    .expect("starting daemon");

    // Drip half a header, then go silent: only the per-frame deadline
    // can save the handler thread.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(&[b'S', b'N', b'T', b'M', 2])
        .expect("partial header");
    stream.flush().expect("flush");
    let started = Instant::now();
    let frame = read_frame(&mut stream);
    let elapsed = started.elapsed();

    // The daemon must answer with a typed Reject naming the deadline,
    // no earlier than the deadline itself and not hang much past it.
    match frame {
        Ok(frame) => {
            assert_eq!(frame.kind, FrameKind::Reject, "got {frame:?}");
            let reason = String::from_utf8_lossy(&frame.payload).to_string();
            assert!(reason.contains("deadline"), "reject reason: {reason}");
        }
        Err(e) => panic!("expected a Reject frame, stream died with {e}"),
    }
    assert!(
        elapsed >= Duration::from_millis(300),
        "cut {elapsed:?} arrived before the {deadline:?} deadline"
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "cut took {elapsed:?}, daemon hung past its {deadline:?} deadline"
    );

    let stats = server.stats();
    assert!(
        stats.deadline_cuts >= 1,
        "no deadline cut counted: {stats:?}"
    );
    assert!(stats.rejected >= 1, "no reject counted: {stats:?}");

    let report = server.shutdown_and_join();
    assert!(report.clean(), "slow-loris leaked a thread: {report:?}");
}

#[test]
fn fault_storm_leaks_no_handler_threads() {
    let server = soak_server();
    let mut plan = FaultPlan::new(SOAK_SEED ^ 0xDEAD, 1.0); // every connection faulted
    plan.max_stall = Duration::from_millis(600);
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("starting proxy");
    let addr = proxy.local_addr().to_string();

    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(700)),
        write_timeout: Some(Duration::from_millis(500)),
    };
    let policy = RetryPolicy {
        max_retries: 1,
        backoff_base_ms: 1,
        seed: SOAK_SEED,
    };
    // Storm the daemon through an all-fault proxy; outcomes are free to
    // fail — the contract under test is thread accounting, not success.
    for _ in 0..24 {
        let _ = request_with_retry(addr.as_str(), &Request::Ping, &config, &policy);
    }
    // And a volley of raw hostile streams, no proxy involved.
    for garbage in [&b"XXXXXXXXXXXXXXXXXXXXXXXX"[..], &[0u8; 3][..], &[]] {
        if let Ok(mut stream) = TcpStream::connect(server.local_addr()) {
            let _ = stream.write_all(garbage);
        } // dropped: mid-exchange disconnects
    }

    let forwarders = proxy.shutdown_and_join();
    assert!(forwarders > 0, "the proxy never forwarded anything");
    let report = server.shutdown_and_join();
    assert!(
        report.handlers_spawned >= 24,
        "storm spawned too few handlers: {report:?}"
    );
    assert_eq!(
        report.handlers_spawned, report.handlers_joined,
        "leaked handler threads: {report:?}"
    );
    assert_eq!(report.handlers_panicked, 0, "handler panicked: {report:?}");
}

#[test]
fn connection_cap_sheds_with_typed_overloaded() {
    let server = Server::start(ServiceConfig {
        max_connections: 1,
        read_timeout: Some(Duration::from_secs(10)),
        ..ServiceConfig::default()
    })
    .expect("starting daemon");
    let addr = server.local_addr();

    // One idle connection occupies the only slot.
    let holder = TcpStream::connect(addr).expect("holder connect");
    std::thread::sleep(Duration::from_millis(150));

    let mut client = Client::connect(addr).expect("connect over cap");
    match client.request(&Request::Ping) {
        Ok(Response::Overloaded) => {}
        other => panic!("expected a typed Overloaded at the cap, got {other:?}"),
    }
    assert!(server.stats().connections_shed >= 1);

    // Releasing the slot restores service.
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(addr).and_then(|mut c| c.request(&Request::Ping)) {
            Ok(Response::Ok(payload)) => {
                assert_eq!(payload, b"pong\n");
                break;
            }
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("service never recovered after the cap freed: {other:?}"),
        }
    }

    let report = server.shutdown_and_join();
    assert!(report.clean(), "cap shedding leaked threads: {report:?}");
}

#[test]
fn hostile_streams_get_typed_rejects_and_daemon_survives() {
    let server = soak_server();
    let addr = server.local_addr();

    // (a) Pure garbage: rejected with the frame error, connection closed.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GARBAGEGARBAGEGARBAGEGARBAGE")
        .expect("write garbage");
    let frame = read_frame(&mut stream).expect("reject for garbage");
    assert_eq!(frame.kind, FrameKind::Reject);
    assert!(String::from_utf8_lossy(&frame.payload).contains("magic"));

    // (b) A truncated frame: header promises more payload than ever
    // arrives, then a clean FIN. Typed Reject, not a hang.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let full = encode_frame(FrameKind::Request, &Request::Ping.to_bytes().unwrap())
        .expect("encoding ping");
    stream
        .write_all(&full[..full.len() - 2])
        .expect("partial frame");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let frame = read_frame(&mut stream).expect("reject for truncation");
    assert_eq!(frame.kind, FrameKind::Reject);
    assert!(String::from_utf8_lossy(&frame.payload).contains("truncated"));

    // (c) In-flight corruption: a valid frame with one payload byte
    // flipped after the checksum was stamped.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut corrupt = full.clone();
    corrupt[HEADER_LEN + 3] ^= 0xA5;
    assert_ne!(
        payload_checksum(&corrupt[HEADER_LEN..]),
        payload_checksum(&full[HEADER_LEN..])
    );
    stream.write_all(&corrupt).expect("corrupt frame");
    let frame = read_frame(&mut stream).expect("reject for corruption");
    assert_eq!(frame.kind, FrameKind::Reject);
    assert!(String::from_utf8_lossy(&frame.payload).contains("checksum"));

    // (d) A response-kind frame where a request belongs.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, FrameKind::Ok, b"i am not a request").expect("write");
    let frame = read_frame(&mut stream).expect("reject for wrong kind");
    assert_eq!(frame.kind, FrameKind::Reject);

    // After all of it the daemon still serves.
    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(
        client.request(&Request::Ping),
        Ok(Response::Ok(_))
    ));
    assert!(server.stats().rejected >= 4);

    let report = server.shutdown_and_join();
    assert!(report.clean(), "hostile streams leaked threads: {report:?}");
}

// ---------------------------------------------------------------------
// Binary-level coverage: the shipped daemon + loadgen under chaos.
// ---------------------------------------------------------------------

/// A daemon child with stderr captured, so the shutdown accounting
/// line is assertable.
struct DaemonProc {
    child: Child,
    addr: String,
}

impl DaemonProc {
    fn spawn(extra: &[&str]) -> DaemonProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sentomistd"))
            .arg("--port")
            .arg("0")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawning sentomistd");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("reading the listening line");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .trim()
            .to_string();
        DaemonProc { child, addr }
    }

    /// Shuts down via loadgen and returns (exit ok, captured stderr).
    fn shutdown(mut self) -> (bool, String) {
        let status = Command::new(env!("CARGO_BIN_EXE_sentomist_loadgen"))
            .args(["--addr", &self.addr, "--shutdown"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("running loadgen --shutdown");
        assert!(status.success(), "shutdown frame failed: {status:?}");
        let exit = self.child.wait().expect("waiting for daemon");
        let mut stderr = String::new();
        if let Some(mut pipe) = self.child.stderr.take() {
            let _ = pipe.read_to_string(&mut stderr);
        }
        (exit.success(), stderr)
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn retried_mine_through_chaos_binary_is_byte_identical_and_daemon_reports_zero_leaks() {
    let dir = workdir("chaos-binary");
    let store = dir.join("corpus");
    let offline = record_corpus(&store);

    // Precondition that makes convergence deterministic, asserted so a
    // plan reshuffle fails loudly instead of flaking: within the retry
    // budget there is at least one connection the proxy leaves clean.
    let chaos_seed = 20_100_614; // the paper's ICDCS year + a nonce
    let plan = FaultPlan::new(chaos_seed, 0.5);
    assert!(
        (0..9).any(|conn| plan.fault_for(conn).fault == WireFault::None),
        "pinned seed {chaos_seed} has no clean connection in the retry budget"
    );

    let daemon = DaemonProc::spawn(&["--read-timeout-ms", "2000"]);
    let out_path = dir.join("chaos_mine.json");
    let status = Command::new(env!("CARGO_BIN_EXE_sentomist_loadgen"))
        .args([
            "--addr",
            &daemon.addr,
            "--chaos",
            &chaos_seed.to_string(),
            "--chaos-rate",
            "0.5",
            "--retries",
            "8",
            "--connect-timeout-ms",
            "1000",
            "--read-timeout-ms",
            "2000",
            "--once",
            "--job",
            "mine",
            "--store",
            store.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .status()
        .expect("running loadgen under chaos");
    assert!(status.success(), "chaos mine failed: {status:?}");
    let payload = std::fs::read(&out_path).expect("reading chaos mine output");
    assert_eq!(
        payload,
        offline.as_bytes(),
        "mine through the chaos proxy differs from offline trace mine"
    );

    let (clean_exit, stderr) = daemon.shutdown();
    assert!(clean_exit, "daemon exited unclean; stderr: {stderr}");
    assert!(
        stderr.contains("0 leaked"),
        "daemon did not report zero leaked threads: {stderr}"
    );
}

#[test]
fn loadgen_exit_codes_are_documented_contracts() {
    let loadgen = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_sentomist_loadgen"))
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .output()
            .expect("running loadgen")
    };

    let daemon = DaemonProc::spawn(&[]);

    // 0: success.
    let out = loadgen(&["--addr", &daemon.addr, "--once", "--job", "ping"]);
    assert_eq!(out.status.code(), Some(0), "ping: {out:?}");

    // 1: the daemon ran the job and answered Error.
    let out = loadgen(&["--addr", &daemon.addr, "--once", "--job", "panic"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("failure class: error-response"));

    // 2: connection refused — bind a port, free it, dial it.
    let refused_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let out = loadgen(&[
        "--addr",
        &refused_addr,
        "--once",
        "--job",
        "ping",
        "--connect-timeout-ms",
        "500",
    ]);
    assert_eq!(out.status.code(), Some(2), "refused: {out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("failure class: connect"));

    // 4: a wire/protocol failure — a server speaking garbage.
    let garbage_listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let garbage_addr = garbage_listener.local_addr().expect("addr").to_string();
    let speaker = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = garbage_listener.accept() {
            let _ = stream.write_all(b"THIS IS NOT A FRAME AT ALL........");
        }
    });
    let out = loadgen(&[
        "--addr",
        &garbage_addr,
        "--once",
        "--job",
        "sleep", // non-idempotent: fails fast, no retry loop to wait out
        "--read-timeout-ms",
        "1000",
    ]);
    assert_eq!(out.status.code(), Some(4), "garbage server: {out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("failure class: wire/protocol"));
    speaker.join().expect("garbage speaker");

    daemon.shutdown();
}

#[test]
fn loadgen_overloaded_exit_code_at_the_connection_cap() {
    let daemon = DaemonProc::spawn(&["--max-connections", "1", "--read-timeout-ms", "10000"]);
    // Occupy the only slot with an idle connection.
    let holder = TcpStream::connect(daemon.addr.as_str()).expect("holder connect");
    std::thread::sleep(Duration::from_millis(150));

    let out = Command::new(env!("CARGO_BIN_EXE_sentomist_loadgen"))
        .args(["--addr", &daemon.addr, "--once", "--job", "ping"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("running loadgen at the cap");
    assert_eq!(out.status.code(), Some(3), "cap shed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("failure class: overloaded"));

    drop(holder);
    std::thread::sleep(Duration::from_millis(200));
    daemon.shutdown();
}
