//! Serialization round-trips across the stack: programs, traces,
//! extraction results and reports all survive JSON (the CLI's artifact
//! format), preserving analysis results exactly.

use sentomist::core::{harvest, Pipeline, SampleIndex};
use sentomist::tinyvm::{self, devices::NodeConfig, node::Node};
use sentomist::trace::{extract, Recorder, Trace};
use std::sync::Arc;

const APP: &str = "\
.handler TIMER0 h
.task t
.data n 1
main:
 ldi r1, 8
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 post t
 reti
t:
 lda r1, n
 addi r1, 1
 sta n, r1
 ret
";

fn record() -> (Arc<tinyvm::Program>, Trace) {
    let program = Arc::new(tinyvm::assemble(APP).unwrap());
    let mut node = Node::new(program.clone(), NodeConfig::default());
    let mut rec = Recorder::new(program.len());
    node.run(500_000, &mut rec).unwrap();
    (program, rec.into_trace())
}

#[test]
fn program_round_trips_through_json() {
    let (program, _) = record();
    let json = serde_json::to_string(&*program).unwrap();
    let back: tinyvm::Program = serde_json::from_str(&json).unwrap();
    assert_eq!(back, *program);
    // The reloaded program is still runnable.
    let mut node = Node::new(Arc::new(back), NodeConfig::default());
    node.run(100_000, &mut tinyvm::NullSink).unwrap();
    assert!(node.instructions_retired() > 0);
}

#[test]
fn trace_round_trips_and_analyzes_identically() {
    let (_, trace) = record();
    let json = serde_json::to_string(&trace).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace);
    let a = extract(&trace).unwrap();
    let b = extract(&back).unwrap();
    assert_eq!(a, b);
}

#[test]
fn report_round_trips_with_exact_scores() {
    let (_, trace) = record();
    let samples = harvest(&trace, tinyvm::isa::irq::TIMER0, |s, _| SampleIndex::Seq(s)).unwrap();
    let report = Pipeline::default_ocsvm(0.2).rank(samples).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: sentomist::core::Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.table(5, 2), report.table(5, 2));
}

#[test]
fn binary_encoding_matches_assembled_text() {
    let (program, _) = record();
    let words = tinyvm::encode::encode_program(&program);
    assert_eq!(words.len(), program.len());
    for (w, &op) in words.iter().zip(&program.ops) {
        assert_eq!(tinyvm::decode(*w), Ok(op));
    }
}
