//! Causal-chain acceptance: for each case study's pinned scenario seed,
//! the reconstructed chain must contain both the injected bug site and
//! its victim read, the fixed variant must emit no chain at all, and the
//! chain-restricted localization must be strictly smaller than the flat
//! deviation list. The serialized chains are pinned byte-for-byte by
//! golden fixtures; regenerate intentionally drifted ones with
//! `UPDATE_FIXTURES=1 cargo test --test causal`.

use sentomist::apps::{
    ctp, emulate_scenario, mine_scenario, scenario, scenario_program, HuntCase, MinedScenario,
    Variant,
};
use sentomist::core::{harvest_set, localize_set, SampleIndex, SampleSet};
use sentomist::tinyvm::isa::irq;
use sentomist::tinyvm::Program;
use sentomist::trace::Trace;
use std::sync::Arc;

/// Per-case ground truth at its pinned scenario seed: the injected bug's
/// routine, and the routine holding the victim read the chain's hops
/// must reach.
const PINNED: &[(HuntCase, u64, &str, &str)] = &[
    (HuntCase::Oscilloscope, 0xBEF0, "on_read_done", "send_task"),
    (HuntCase::Forwarder, 0xBEEF, "fwd_drop", "fwd_task"),
    (HuntCase::Ctp, 0xBEEF, "ctp_fail", "ctp_task"),
];

fn mined_at(
    case: HuntCase,
    variant: Variant,
    seed: u64,
) -> (MinedScenario, Vec<Trace>, Arc<Program>) {
    let s = scenario(case, variant, seed);
    let traces = emulate_scenario(&s).unwrap();
    let mined = mine_scenario(&s, &traces).unwrap();
    let program = scenario_program(&s).unwrap();
    (mined, traces, program)
}

/// Rebuilds the sample set `mine_scenario` localized over — the same
/// harvest calls, so the flat hit list can be recomputed for comparison.
fn scenario_set(case: HuntCase, traces: &[Trace]) -> SampleSet {
    match case {
        HuntCase::Oscilloscope => {
            harvest_set(&traces[0], irq::ADC, |seq, _| SampleIndex::Seq(seq)).unwrap()
        }
        HuntCase::Forwarder => {
            harvest_set(&traces[1], irq::RX, |seq, _| SampleIndex::Seq(seq)).unwrap()
        }
        HuntCase::Ctp => {
            let mut all = SampleSet::empty();
            for &node in &ctp::SOURCES {
                let set = harvest_set(&traces[node as usize], irq::TIMER0, |seq, _| {
                    SampleIndex::NodeSeq { node, seq }
                })
                .unwrap();
                all.append(&set);
            }
            all
        }
    }
}

#[test]
fn chains_match_golden_fixtures() {
    for &(case, seed, _, _) in PINNED {
        let (mined, _, _) = mined_at(case, Variant::Buggy, seed);
        let chain = mined
            .chain
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no chain at pinned seed {seed:#x}", case.name()));
        let mut got = serde_json::to_string_pretty(chain).unwrap();
        got.push('\n');
        let path = format!(
            "{}/tests/fixtures/chain_{}.json",
            env!("CARGO_MANIFEST_DIR"),
            case.name()
        );
        if std::env::var("UPDATE_FIXTURES").is_ok() {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {path}: {e}"));
        assert_eq!(
            got,
            want,
            "{}: causal chain drifted from {path}; regenerate with \
             UPDATE_FIXTURES=1 if intentional",
            case.name()
        );
    }
}

#[test]
fn chains_contain_the_bug_site_and_its_victim_read() {
    for &(case, seed, bug_routine, victim_routine) in PINNED {
        let (mined, _, program) = mined_at(case, Variant::Buggy, seed);
        assert!(
            !mined.result.buggy_ranks.is_empty(),
            "{}: pinned seed {seed:#x} did not trigger",
            case.name()
        );
        let chain = mined.chain.as_ref().unwrap();
        assert!(
            mined.chain_contains_bug_site,
            "{}: chain misses the injected bug site {bug_routine}",
            case.name()
        );
        let covers = |routine: &str| {
            chain.touches_routine(routine)
                || chain
                    .sliced_executed
                    .iter()
                    .any(|&pc| program.enclosing_label(pc) == Some(routine))
        };
        assert!(
            covers(bug_routine),
            "{}: chain evidence misses {bug_routine}",
            case.name()
        );
        assert!(
            chain
                .hops
                .iter()
                .any(|h| h.read.routine.as_deref() == Some(victim_routine)),
            "{}: no hop reads in the victim routine {victim_routine}; hops: {:?}",
            case.name(),
            chain.hops
        );
        // Every hop crosses contexts: the write and read were attributed
        // to different lifecycle contexts.
        for h in &chain.hops {
            assert_ne!(
                h.write.context,
                h.read.context,
                "{}: hop does not cross contexts",
                case.name()
            );
        }
    }
}

#[test]
fn fixed_variants_emit_no_chain() {
    for &(case, seed, _, _) in PINNED {
        for offset in 0..3 {
            let (mined, _, _) = mined_at(case, Variant::Fixed, seed + offset);
            assert!(
                mined.chain.is_none(),
                "{}: fixed variant emitted a chain at seed {:#x}",
                case.name(),
                seed + offset
            );
            assert!(!mined.chain_contains_bug_site);
        }
    }
}

/// The acceptance bound on `localize --causal`: restricting the flat
/// deviation list to chain members yields a strictly smaller, non-empty
/// explanation.
#[test]
fn causal_localization_is_strictly_smaller_than_the_flat_list() {
    for &(case, seed, _, _) in PINNED {
        let (mined, traces, program) = mined_at(case, Variant::Buggy, seed);
        let chain = mined.chain.as_ref().unwrap();
        let set = scenario_set(case, &traces);
        let best = mined.result.buggy_ranks[0];
        let flagged_index = mined.result.report.ranking[best - 1].index;
        let row = set
            .meta
            .iter()
            .position(|m| m.index == flagged_index)
            .unwrap();
        let flat = localize_set(&set, row, &program, 1.0);
        let causal: Vec<_> = flat.iter().filter(|h| chain.contains(h.pc)).collect();
        assert!(
            !causal.is_empty(),
            "{}: the chain explains none of the flat hits",
            case.name()
        );
        assert!(
            causal.len() < flat.len(),
            "{}: causal restriction did not shrink the list ({} hits)",
            case.name(),
            flat.len()
        );
    }
}

#[test]
#[ignore]
fn probe_seed_space() {
    for case in [HuntCase::Oscilloscope, HuntCase::Forwarder, HuntCase::Ctp] {
        for seed in 0xBEE0u64..0xBEE0 + 48 {
            let (mined, traces, program) = mined_at(case, Variant::Buggy, seed);
            if mined.result.buggy_ranks.is_empty() {
                continue;
            }
            let Some(chain) = mined.chain.as_ref() else {
                println!("{} seed={seed:#x} triggered but NO chain", case.name());
                continue;
            };
            let set = scenario_set(case, &traces);
            let best = mined.result.buggy_ranks[0];
            let flagged_index = mined.result.report.ranking[best - 1].index;
            let row = set
                .meta
                .iter()
                .position(|m| m.index == flagged_index)
                .unwrap();
            let flat = localize_set(&set, row, &program, 1.0);
            let causal = flat.iter().filter(|h| chain.contains(h.pc)).count();
            println!(
                "{} seed={seed:#x} contains_bug={} hops={} flat={} causal={} shrinks={}",
                case.name(),
                mined.chain_contains_bug_site,
                chain.hops.len(),
                flat.len(),
                causal,
                causal < flat.len()
            );
        }
    }
}
