//! Acceptance suite for the `hunt` subsystem: a pinned-seed bug-bounty
//! campaign over the three case studies must (1) report at least one
//! invariant violation per injected bug with a working repro line,
//! (2) report zero violations over the repaired variants, (3) render
//! `bug_report.json` byte-identically for every thread count, pinned by
//! a golden fixture, and (4) replay every reported seed bit for bit.
//! Scenario generation itself is property-tested for totality and
//! determinism across calls and threads.

mod support;

use proptest::prelude::*;
use sentomist::apps::{scenario, HuntCase, Variant};
use serde::Value;
use support::{cli, get_u64, run_ok, workdir};

/// The fixture's campaign: seed 0xBEEF, 50 iterations, all buggy cases.
const GOLDEN_ARGS: [&str; 6] = [
    "hunt",
    "--campaign-seed",
    "48879",
    "--iterations",
    "50",
    "--threads",
];

/// One pinned-seed hunt over the three buggy variants: every target
/// reports at least one violation (the injected bug's detection), the
/// rendered `bug_report.json` matches the golden fixture byte for byte,
/// and re-running at a different thread count changes nothing.
#[test]
fn golden_hunt_matches_fixture_and_is_thread_invariant() {
    let dir = workdir("hunt-golden");
    let out1 = dir.join("t1");
    let out4 = dir.join("t4");
    run_ok(cli().args(GOLDEN_ARGS).args(["1", "--out"]).arg(&out1));
    run_ok(cli().args(GOLDEN_ARGS).args(["4", "--out"]).arg(&out4));

    let report1 = std::fs::read_to_string(out1.join("bug_report.json")).unwrap();
    let report4 = std::fs::read_to_string(out4.join("bug_report.json")).unwrap();
    assert_eq!(
        report1, report4,
        "bug_report.json diverged across thread counts"
    );

    let fixture = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/hunt_bug_report.json"
    ))
    .unwrap();
    assert_eq!(
        report1, fixture,
        "bug_report.json drifted from tests/fixtures/hunt_bug_report.json — \
         if the change is intentional, regenerate the fixture with \
         `sentomist hunt --campaign-seed 48879 --iterations 50 --out <dir>`"
    );

    // Every injected bug was detected: each target carries at least one
    // violation, and transient_symptom_free (the bug detector) fires.
    let doc: Value = serde_json::from_str(&report1).unwrap();
    let targets = doc.get("targets").unwrap().as_seq().unwrap();
    assert_eq!(targets.len(), 3);
    for target in targets {
        let name = match target.get("target") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("target name is {other:?}"),
        };
        let invariants = target.get("invariants").unwrap().as_seq().unwrap();
        let symptom_violations = invariants
            .iter()
            .find(|s| matches!(s.get("invariant"), Some(Value::Str(n)) if n == "transient_symptom_free"))
            .map(|s| get_u64(s, "violations"))
            .unwrap();
        assert!(
            symptom_violations > 0,
            "{name}: injected bug never detected"
        );
    }
    // And the markdown artifact carries copy-pasteable repro lines.
    let md = std::fs::read_to_string(out1.join("BUG_REPORT.md")).unwrap();
    assert!(
        md.contains("sentomist hunt --case 1 --replay --seed "),
        "{md}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every seed the golden report blames must replay its violation byte-
/// identically: two `--replay --json` invocations print the same bytes,
/// and the replayed record equals the record inside `bug_report.json`.
#[test]
fn reported_seeds_replay_their_violations_byte_identically() {
    let fixture = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/hunt_bug_report.json"
    ))
    .unwrap();
    let doc: Value = serde_json::from_str(&fixture).unwrap();
    for target in doc.get("targets").unwrap().as_seq().unwrap() {
        let case = match target.get("target") {
            Some(Value::Str(s)) if s == "oscilloscope" => "1",
            Some(Value::Str(s)) if s == "forwarder" => "2",
            Some(Value::Str(s)) if s == "ctp" => "3",
            other => panic!("unknown target {other:?}"),
        };
        // First violating record of the target (records are seed-sorted).
        let record = target
            .get("records")
            .unwrap()
            .as_seq()
            .unwrap()
            .iter()
            .find(|r| !r.get("violations").unwrap().as_seq().unwrap().is_empty())
            .expect("target has no violating record");
        let seed = get_u64(record, "seed").to_string();
        let args = [
            "hunt", "--case", case, "--replay", "--seed", &seed, "--json",
        ];
        let (a, _) = run_ok(cli().args(args));
        let (b, _) = run_ok(cli().args(args));
        assert_eq!(a, b, "case {case} seed {seed}: replay diverged");
        let replayed: Value = serde_json::from_str(&a).unwrap();
        assert_eq!(
            &replayed, record,
            "case {case} seed {seed}: replay does not reproduce the report's record"
        );
    }
}

/// The repaired variants are the hunt's null hypothesis: a pinned-seed
/// fixed-variant hunt reports zero violations, so `--strict` exits 0 —
/// while the same seeds on the buggy variants exit nonzero.
#[test]
fn fixed_variants_report_zero_violations_and_strict_exit_codes_hold() {
    let dir = workdir("hunt-strict");
    let (stdout, _) = run_ok(
        cli()
            .args(["hunt", "--fixed", "--iterations", "8", "--strict", "--out"])
            .arg(dir.join("fixed")),
    );
    assert!(stdout.contains("0 invariant violation(s)"), "{stdout}");
    let report = std::fs::read_to_string(dir.join("fixed").join("bug_report.json")).unwrap();
    let doc: Value = serde_json::from_str(&report).unwrap();
    for target in doc.get("targets").unwrap().as_seq().unwrap() {
        for record in target.get("records").unwrap().as_seq().unwrap() {
            let violations = record.get("violations").unwrap().as_seq().unwrap();
            assert!(
                violations.is_empty(),
                "fixed variant violated an invariant: {violations:?}"
            );
        }
    }

    // The same seeds on a buggy variant find the bug; --strict says no.
    let out = cli()
        .args([
            "hunt",
            "--case",
            "2",
            "--iterations",
            "5",
            "--strict",
            "--out",
        ])
        .arg(dir.join("buggy"))
        .output()
        .unwrap();
    assert!(!out.status.success(), "--strict ignored violations");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--strict"), "stderr: {err}");
    // Without --strict the identical hunt exits 0: violations are the
    // report's payload, not an error.
    run_ok(
        cli()
            .args(["hunt", "--case", "2", "--iterations", "5", "--out"])
            .arg(dir.join("lenient")),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bad invocations exit nonzero with a usable message.
#[test]
fn hunt_rejects_malformed_invocations() {
    for args in [
        &["hunt", "--case", "9"][..],
        &["hunt", "--replay", "--case", "1"][..], // no --seed
        &["hunt", "--replay", "--seed", "5"][..], // no single --case
        &["hunt", "--iterations", "many"][..],
    ] {
        let out = cli().args(args).output().unwrap();
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scenario generation is total and deterministic: for arbitrary
    /// (campaign_seed, iteration) — including overflow-wrapping sums —
    /// the scenario exists (no panic), is identical across calls and
    /// across threads, and the buggy/fixed variants of one seed share
    /// the exact same workload.
    #[test]
    fn scenario_generation_is_total_and_thread_deterministic(
        campaign_seed in any::<u64>(),
        iteration in any::<u64>(),
        case_raw in 0u8..3,
    ) {
        let case = HuntCase::ALL[case_raw as usize];
        let seed = campaign_seed.wrapping_add(iteration);
        let here = scenario(case, Variant::Buggy, seed);
        prop_assert_eq!(here, scenario(case, Variant::Buggy, seed));
        let there = std::thread::spawn(move || scenario(case, Variant::Buggy, seed))
            .join()
            .expect("scenario generation panicked on a worker thread");
        prop_assert_eq!(here, there);
        let fixed = scenario(case, Variant::Fixed, seed);
        prop_assert_eq!(
            (here.node_seed, here.run_seconds, here.nu, here.params),
            (fixed.node_seed, fixed.run_seconds, fixed.nu, fixed.params),
            "variant changed the workload at seed {}", seed
        );
    }
}
