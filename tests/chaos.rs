//! Chaos-harness acceptance suite: under deterministically injected
//! panics, hangs, transient errors and on-disk corruption, a supervised
//! campaign must (1) complete with per-seed typed failure records —
//! never a process abort, never a hang past the watchdog budget — and
//! (2) reproduce the exact same report for the same chaos seed. A
//! campaign killed mid-flight must resume from its journal into a
//! document byte-identical to an uninterrupted sweep's.
//!
//! The chaos seed is pinned (`0xC0FFEE`) so CI replays the identical
//! fault pattern on every run.

mod support;

use proptest::prelude::*;
use sentomist::core::campaign::FailureKind;
use sentomist::core::chaos::{corrupt_file, ChaosConfig};
use sentomist::core::supervise::{
    run_supervised, RunContext, RunFailure, SeedReport, SupervisorOptions,
};
use std::sync::Arc;
use std::time::Duration;
use support::{cli, ok_outcome, run_ok, workdir};

const CHAOS_SEED: u64 = 0xC0FFEE;

fn chaos_sweep(threads: usize) -> (Vec<SeedReport>, sentomist::core::campaign::CampaignResult) {
    let seeds: Vec<u64> = (0..60).collect();
    let cfg = ChaosConfig::uniform(CHAOS_SEED, 0.15);
    let job = cfg.wrap(|ctx: &RunContext| Ok(ok_outcome(ctx.seed())));
    let opts = SupervisorOptions {
        threads,
        max_retries: 2,
        backoff_base_ms: 0,
        timeout: Some(Duration::from_secs(2)),
        ..SupervisorOptions::default()
    };
    let mut reports = Vec::new();
    let result = run_supervised(&seeds, &opts, Arc::new(job), |r| reports.push(r.clone()));
    reports.sort_by_key(|r| r.seed);
    (reports, result)
}

/// Injected panics, hangs and transient faults across 60 seeds: every
/// seed finishes with either an outcome or a typed error, hangs are
/// watchdogged (not retried), panics are typed, transients clear within
/// the retry budget — and the whole report is identical across thread
/// counts, because every fault derives from the pinned chaos seed.
#[test]
fn chaos_campaign_survives_every_fault_class_deterministically() {
    let (reports_a, result_a) = chaos_sweep(1);
    let (_reports_b, result_b) = chaos_sweep(4);

    // Every seed is accounted for, no hang outlived the watchdog.
    assert_eq!(result_a.outcomes.len() + result_a.errors.len(), 60);
    assert_eq!(reports_a.len(), 60);

    // The pinned chaos seed injects every fault class at 15% each.
    let panics = result_a
        .errors
        .iter()
        .filter(|e| e.kind == FailureKind::Panic)
        .count();
    let timeouts = result_a
        .errors
        .iter()
        .filter(|e| e.kind == FailureKind::TimedOut)
        .count();
    assert!(panics > 0, "no injected panic surfaced");
    assert!(timeouts > 0, "no injected hang was watchdogged");
    // Transient faults (1-2 failing attempts) clear inside the 2-retry
    // budget: they show up as successes that took extra attempts.
    let retried_ok = reports_a
        .iter()
        .filter(|r| r.outcome.is_some() && r.attempts > 1)
        .count();
    assert!(retried_ok > 0, "no transient fault cleared on retry");
    // Panics burn the full retry budget before they are recorded.
    for e in &result_a.errors {
        match e.kind {
            FailureKind::Panic => assert_eq!(e.attempts, 3, "seed {}", e.seed),
            FailureKind::TimedOut => assert_eq!(e.attempts, 1, "seed {}", e.seed),
            FailureKind::Error => {}
        }
    }

    // Same chaos seed, same final report — regardless of thread count.
    assert_eq!(result_a.errors, result_b.errors);
    assert_eq!(result_a.outcomes.len(), result_b.outcomes.len());
    for (a, b) in result_a.outcomes.iter().zip(&result_b.outcomes) {
        assert!(
            a.matches(b),
            "seed {} diverged across thread counts",
            a.seed
        );
    }
}

/// Kill a campaign after 2 of 5 seeds (`--stop-after`, the chaos hook
/// simulating a mid-flight kill), resume it, and require the resumed
/// JSON document — summary, every outcome, every `trace_digest` — to be
/// byte-identical to an uninterrupted sweep's.
#[test]
fn resumed_campaign_document_is_byte_identical_to_uninterrupted() {
    let dir = workdir("resume");
    let full = dir.join("full");
    let part = dir.join("part");
    let sweep = |extra: &[&str], store: &std::path::Path| {
        let mut cmd = cli();
        cmd.arg("campaign")
            .args(["--seeds", "5", "--seconds", "1", "--threads", "2", "--json"])
            .arg("--store")
            .arg(store);
        for flag in extra {
            cmd.arg(flag);
        }
        run_ok(&mut cmd).0
    };
    let uninterrupted = sweep(&[], &full);

    sweep(&["--stop-after", "2"], &part);
    // The killed campaign left its checkpoint journal behind.
    assert!(part.join("journal.jsonl").exists(), "no checkpoint journal");
    let resumed = sweep(&["--resume"], &part);

    assert_eq!(uninterrupted, resumed, "resumed document diverged");
    // A finished campaign clears its journal (campaign.json is final).
    assert!(!part.join("journal.jsonl").exists(), "journal not cleared");

    // And the resumed corpus re-mines into the same document too.
    let remined = run_ok(cli().arg("trace").arg("mine").arg(&part).arg("--json")).0;
    assert_eq!(uninterrupted, remined);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic on-disk corruption → quarantine-and-continue: the
/// damaged run is moved aside with a typed reason, listed by
/// `trace quarantine ls`, the remaining corpus still mines, and
/// `trace info --salvage` recovers the damaged file's sealed prefix.
#[test]
fn corrupted_run_is_quarantined_and_salvageable_and_the_rest_mines() {
    let dir = workdir("quarantine");
    let store = dir.join("corpus");
    run_ok(
        cli()
            .arg("campaign")
            .args(["--seeds", "3", "--seconds", "1"])
            .arg("--store")
            .arg(&store),
    );
    let victim = store
        .join("runs")
        .join(format!("seed-{:020}", 1001))
        .join("node-000.stc");
    let offset = corrupt_file(&victim, CHAOS_SEED).unwrap();
    // Same chaos seed, same damage: the corruption is reproducible.
    assert_eq!(corrupt_file(&victim, CHAOS_SEED).unwrap(), offset);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    // Salvage reports on the damaged file instead of rejecting it.
    let salvage = run_ok(cli().arg("trace").arg("info").arg("--salvage").arg(&victim)).0;
    assert!(salvage.contains("damaged"), "salvage: {salvage}");
    assert!(salvage.contains("recovered"), "salvage: {salvage}");

    // Quarantine-aware mining sets the run aside and mines the rest.
    let mined = run_ok(
        cli()
            .arg("trace")
            .arg("mine")
            .arg(&store)
            .arg("--quarantine")
            .arg("--json"),
    )
    .0;
    let doc: serde::Value = serde_json::from_str(&mined).unwrap();
    let outcomes = doc.get("outcomes").unwrap().as_seq().unwrap();
    assert_eq!(outcomes.len(), 2, "healthy runs still mine");
    let quarantined = doc.get("quarantined").unwrap().as_seq().unwrap();
    assert_eq!(quarantined.len(), 1);
    let errors = doc.get("errors").unwrap().as_seq().unwrap();
    assert!(
        errors.is_empty(),
        "quarantined runs are skipped, not failed"
    );

    // The quarantine is navigable from the CLI with recorded reasons.
    let ls = run_ok(cli().arg("trace").arg("quarantine").arg("ls").arg(&store)).0;
    assert!(ls.contains(&format!("seed-{:020}", 1001)), "ls: {ls}");
    assert!(
        ls.contains("truncated") || ls.contains("checksum"),
        "ls: {ls}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--strict` turns any failed run into a nonzero exit.
#[test]
fn strict_campaign_exits_nonzero_when_runs_fail() {
    // Chaos rate 1.0: every seed panics; with --strict that must fail.
    let out = cli()
        .arg("campaign")
        .args(["--seeds", "2", "--seconds", "1", "--strict"])
        .args(["--chaos", "1", "--chaos-rate", "1.0"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--strict ignored failures");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--strict"), "stderr: {err}");

    // Without --strict the same campaign exits zero (partial results).
    let out = cli()
        .arg("campaign")
        .args(["--seeds", "2", "--seconds", "1"])
        .args(["--chaos", "1", "--chaos-rate", "1.0"])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[derive(Debug, Clone, Copy)]
enum Injected {
    Panic,
    Hang,
    Transient,
    Fatal,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary single-fault injection — any fault class, at any seed,
    /// under any retry budget — never panics the orchestrator: the
    /// campaign always completes with all 8 seeds accounted for and the
    /// failure (if the budget didn't cover it) typed correctly.
    #[test]
    fn any_single_fault_never_panics_the_orchestrator(
        kind_raw in 0u8..4,
        target in 0u64..8,
        retries in 0u32..3,
        threads in 1usize..4,
    ) {
        let kind = match kind_raw {
            0 => Injected::Panic,
            1 => Injected::Hang,
            2 => Injected::Transient,
            _ => Injected::Fatal,
        };
        let job = move |ctx: &RunContext| {
            if ctx.seed() != target {
                return Ok(ok_outcome(ctx.seed()));
            }
            match kind {
                Injected::Panic => panic!("injected panic at {target}"),
                Injected::Hang => {
                    while !ctx.cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(RunFailure::TimedOut("injected hang".into()))
                }
                Injected::Transient if ctx.attempt() <= 1 => {
                    Err(RunFailure::Transient("injected transient".into()))
                }
                Injected::Transient => Ok(ok_outcome(ctx.seed())),
                Injected::Fatal => Err(RunFailure::Fatal("injected fatal".into())),
            }
        };
        let seeds: Vec<u64> = (0..8).collect();
        let opts = SupervisorOptions {
            threads,
            max_retries: retries,
            backoff_base_ms: 0,
            timeout: Some(Duration::from_millis(100)),
            ..SupervisorOptions::default()
        };
        let result = run_supervised(&seeds, &opts, Arc::new(job), |_| {});
        prop_assert_eq!(result.outcomes.len() + result.errors.len(), 8);
        let failed: Vec<u64> = result.errors.iter().map(|e| e.seed).collect();
        match kind {
            Injected::Panic => {
                prop_assert_eq!(&failed, &vec![target]);
                prop_assert_eq!(result.errors[0].kind, FailureKind::Panic);
                prop_assert_eq!(result.errors[0].attempts, retries + 1);
            }
            Injected::Hang => {
                prop_assert_eq!(&failed, &vec![target]);
                prop_assert_eq!(result.errors[0].kind, FailureKind::TimedOut);
                prop_assert_eq!(result.errors[0].attempts, 1); // never retried
            }
            Injected::Transient => {
                if retries >= 1 {
                    prop_assert!(failed.is_empty(), "transient did not clear");
                } else {
                    prop_assert_eq!(&failed, &vec![target]);
                    prop_assert_eq!(result.errors[0].kind, FailureKind::Error);
                }
            }
            Injected::Fatal => {
                prop_assert_eq!(&failed, &vec![target]);
                prop_assert_eq!(result.errors[0].kind, FailureKind::Error);
                prop_assert_eq!(result.errors[0].attempts, 1); // never retried
            }
        }
    }
}
