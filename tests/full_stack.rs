//! Cross-crate integration: the whole stack — assembler → emulator →
//! network → trace inference → featurization → detector → ranking —
//! exercised through the umbrella crate, with consistency checks between
//! layers.

use sentomist::apps::{run_case2, Case2Config};
use sentomist::core::{harvest, Pipeline, SampleIndex};
use sentomist::netsim::{LinkConfig, NetSim, Topology};
use sentomist::tinyvm::{self, devices::NodeConfig, isa::irq, node::Node};
use sentomist::trace::{extract, CounterTable, Recorder};
use std::sync::Arc;

/// A two-node app: node 0 pings, node 1 echoes and counts.
const PING: &str = "\
.handler TIMER0 tick
.handler RX on_rx
.data pings 1
main:
 in r1, NODE_ID
 cmpi r1, 0
 brne listener
 ldi r1, 40
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
listener:
 ret
tick:
 lda r1, pings
 addi r1, 1
 sta pings, r1
 out RADIO_TX_PUSH, r1
 ldi r2, 1
 out RADIO_SEND, r2
 reti
on_rx:
 in r1, RADIO_RX_POP
 out UART_OUT, r1
 reti
";

#[test]
fn inference_matches_ground_truth_over_the_network() {
    let program = Arc::new(tinyvm::assemble(PING).unwrap());
    let mut topo = Topology::new(2);
    topo.connect(0, 1, LinkConfig::default()).unwrap();
    let mut sim = NetSim::new(topo, 99);
    sim.add_node(program.clone(), NodeConfig::default())
        .unwrap();
    sim.add_node(
        program.clone(),
        NodeConfig {
            node_id: 1,
            ..NodeConfig::default()
        },
    )
    .unwrap();
    let mut recorders = vec![Recorder::new(program.len()), Recorder::new(program.len())];
    sim.run(3_000_000, &mut recorders).unwrap();

    for (id, rec) in recorders.into_iter().enumerate() {
        let trace = rec.into_trace();
        let x = extract(&trace).unwrap();
        let gt: Vec<_> = sim
            .node(id as u16)
            .ground_truth()
            .iter()
            .filter(|g| g.is_complete())
            .collect();
        assert_eq!(x.intervals.len(), gt.len(), "node {id}");
        for (inferred, truth) in x.intervals.iter().zip(&gt) {
            assert_eq!(inferred.start_index, truth.start_index, "node {id}");
            assert_eq!(Some(inferred.end_index), truth.end_index, "node {id}");
        }
        // Counter mass conservation: summed interval counters never exceed
        // total retired instructions times the max overlap depth.
        let table = CounterTable::new(&trace);
        let total_counted: u64 = x
            .intervals
            .iter()
            .map(|iv| table.counter(iv).iter().sum::<u64>())
            .sum();
        assert!(total_counted <= trace.total_instructions() * 4);
    }
    // The receiver heard roughly one packet per tick.
    let heard = sim.node(1).uart().len();
    let pings_addr = program.label("pings").unwrap();
    let sent = sim.node(0).mem()[pings_addr as usize] as usize;
    assert!(heard <= sent && heard + 2 >= sent, "{heard} vs {sent}");
}

#[test]
fn pipeline_over_network_trace_is_clean_for_healthy_app() {
    let program = Arc::new(tinyvm::assemble(PING).unwrap());
    let mut node = Node::new(program.clone(), NodeConfig::default());
    let mut rec = Recorder::new(program.len());
    node.run(5_000_000, &mut rec).unwrap();
    let trace = rec.into_trace();
    let samples = harvest(&trace, irq::TIMER0, |s, _| SampleIndex::Seq(s)).unwrap();
    assert!(samples.len() > 100);
    let report = Pipeline::default_ocsvm(0.05).rank(samples).unwrap();
    // A healthy, metronomic app: the score spread must be tiny compared to
    // a real symptom (no huge negative outliers).
    let min = report
        .ranking
        .iter()
        .map(|r| r.score)
        .fold(f64::INFINITY, f64::min);
    assert!(min > -50.0, "healthy app produced a wild outlier: {min}");
}

#[test]
fn umbrella_reexports_compose() {
    // Smoke: every layer reachable through the umbrella crate.
    let result = run_case2(&Case2Config::default()).unwrap();
    assert_eq!(result.buggy_ranks, vec![1, 2, 3]);
    let _k = sentomist::mlcore::Kernel::rbf_default(8);
    let _t = sentomist::netsim::Topology::chain(2, LinkConfig::default()).unwrap();
}
