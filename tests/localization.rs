//! The bug-localization extension, end to end: after Sentomist flags an
//! interval, `localize` must point at the instructions of the buggy code
//! path — drop branch for case II, failure branch for case III.

use sentomist::apps::forwarder;
use sentomist::core::{harvest, localize, Pipeline, SampleIndex};
use sentomist::netsim::{LinkConfig, NetSim, Topology};
use sentomist::tinyvm::isa::irq;
use sentomist::trace::Recorder;

#[test]
fn localization_implicates_the_drop_branch() {
    // Run case II manually so we keep the relay program and trace.
    let relay = forwarder::relay_program_buggy().unwrap();
    let mut sim = NetSim::new(Topology::chain(3, LinkConfig::default()).unwrap(), 0);
    sim.add_node(
        forwarder::sink_program().unwrap(),
        forwarder::node_config(forwarder::nodes::SINK, 0),
    )
    .unwrap();
    sim.add_node(
        relay.clone(),
        forwarder::node_config(forwarder::nodes::RELAY, 1),
    )
    .unwrap();
    sim.add_node(
        forwarder::source_program(&forwarder::ForwarderParams::default()).unwrap(),
        forwarder::node_config(forwarder::nodes::SOURCE, 2),
    )
    .unwrap();
    let mut recorders = vec![
        Recorder::new(sim.node(0).program().len()),
        Recorder::new(relay.len()),
        Recorder::new(sim.node(2).program().len()),
    ];
    sim.run(20_000_000, &mut recorders).unwrap();
    let trace = recorders.swap_remove(1).into_trace();
    let samples = harvest(&trace, irq::RX, |s, _| SampleIndex::Seq(s)).unwrap();
    let report = Pipeline::default_ocsvm(0.05).rank(samples.clone()).unwrap();

    let top = report.ranking[0].index;
    let flagged = samples.iter().position(|s| s.index == top).unwrap();
    let hits = localize(&samples, flagged, &relay, 1.0);
    assert!(!hits.is_empty(), "no implicated instructions");

    // The drop-branch instructions must appear among the implicated ones,
    // attributed to the fwd_drop routine.
    let drop_pc = relay.label("fwd_drop").unwrap();
    let drop_hit = hits
        .iter()
        .find(|h| h.pc >= drop_pc && h.routine.as_deref() == Some("fwd_drop"));
    assert!(
        drop_hit.is_some(),
        "fwd_drop not implicated; top hits: {:?}",
        hits.iter()
            .take(5)
            .map(|h| (h.pc, h.routine.clone()))
            .collect::<Vec<_>>()
    );
    // And the observed count is 1 execution vs an expectation near 0.
    let hit = drop_hit.unwrap();
    assert_eq!(hit.observed, 1.0);
    assert!(hit.expected < 0.1);
    // Source-line mapping points into the relay assembly.
    assert!(hit.source_line.is_some());
}
