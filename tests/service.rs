//! End-to-end tests for the mining daemon: byte-identity against the
//! offline CLI (cold and cache-hit), cache invalidation when the
//! generation-stamped index advances, `Overloaded` backpressure,
//! poisoned-job isolation, and clean shutdown.

mod support;

use sentomist::service::{Client, Request, Response};
use serde::Value;
use std::io::BufRead;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use support::{cli, get_u64, run_ok, workdir};

/// A daemon child process bound to a fresh loopback port.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `sentomistd --port 0 <extra args>` and parses the bound
    /// address off its `listening on ADDR` line.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sentomistd"))
            .arg("--port")
            .arg("0")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning sentomistd");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("reading the listening line");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .trim()
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr.as_str()).expect("connecting to the daemon")
    }

    fn request(&self, request: &Request) -> Response {
        self.client().request(request).expect("daemon request")
    }

    /// Expects an `Ok` response and returns its payload.
    fn ok(&self, request: &Request) -> Vec<u8> {
        match self.request(request) {
            Response::Ok(payload) => payload,
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    fn stats(&self) -> Value {
        let payload = self.ok(&Request::Stats);
        serde_json::from_str(std::str::from_utf8(&payload).expect("stats utf-8"))
            .expect("stats json")
    }

    /// Sends the shutdown frame and asserts the process exits 0.
    fn shutdown_clean(mut self) {
        match self.request(&Request::Shutdown) {
            Response::Ok(_) => {}
            other => panic!("shutdown answered {other:?}"),
        }
        let status = self.child.wait().expect("waiting for the daemon");
        assert!(status.success(), "daemon exited {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Harmless if the test already shut it down cleanly.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Records a small sharded corpus and returns the offline
/// `trace mine --json` document for it.
fn record_corpus(store: &Path, writers: &str) -> String {
    run_ok(cli().args([
        "campaign",
        "--seeds",
        "3",
        "--seconds",
        "1",
        "--writers",
        writers,
        "--json",
        "--store",
        store.to_str().unwrap(),
    ]));
    offline_mine(store)
}

fn offline_mine(store: &Path) -> String {
    let (stdout, _) = run_ok(cli().args(["trace", "mine", store.to_str().unwrap(), "--json"]));
    stdout
}

#[test]
fn daemon_mine_is_byte_identical_cold_and_cached_and_invalidates_on_merge() {
    let dir = workdir("service-identity");
    let store = dir.join("corpus");
    let offline = record_corpus(&store, "2");

    let daemon = Daemon::spawn(&[]);
    let mine = Request::Mine {
        store: store.to_str().unwrap().to_string(),
        quarantine: false,
    };

    // Cold: the daemon's payload equals the offline document exactly.
    let cold = daemon.ok(&mine);
    assert_eq!(
        cold,
        offline.as_bytes(),
        "cold daemon mine differs from offline trace mine"
    );
    let stats = daemon.stats();
    assert_eq!(get_u64(&stats, "cache_hits"), 0);
    assert_eq!(get_u64(&stats, "cache_misses"), 1);

    // Cache-hit: byte-identical again, served from memory.
    let cached = daemon.ok(&mine);
    assert_eq!(cached, offline.as_bytes());
    let stats = daemon.stats();
    assert_eq!(get_u64(&stats, "cache_hits"), 1);
    assert_eq!(get_u64(&stats, "cache_misses"), 1);

    // `trace merge` compacts the shards and bumps the index generation:
    // the cache entry must be invalidated even though the corpus
    // content (and therefore the document) is unchanged.
    run_ok(cli().args(["trace", "merge", store.to_str().unwrap()]));
    let after_merge = daemon.ok(&mine);
    assert_eq!(
        after_merge,
        offline.as_bytes(),
        "document changed across a content-preserving merge"
    );
    let stats = daemon.stats();
    assert_eq!(
        get_u64(&stats, "cache_misses"),
        2,
        "generation bump did not invalidate the cache"
    );

    // And the re-mined result is cached again under the new fingerprint.
    let recached = daemon.ok(&mine);
    assert_eq!(recached, offline.as_bytes());
    assert_eq!(get_u64(&daemon.stats(), "cache_hits"), 2);

    daemon.shutdown_clean();
}

#[test]
fn loadgen_single_shot_matches_offline_mine() {
    let dir = workdir("service-loadgen-once");
    let store = dir.join("corpus");
    let offline = record_corpus(&store, "1");

    let daemon = Daemon::spawn(&[]);
    let out_path = dir.join("daemon_mine.json");
    let status = Command::new(env!("CARGO_BIN_EXE_sentomist_loadgen"))
        .args([
            "--addr",
            &daemon.addr,
            "--once",
            "--job",
            "mine",
            "--store",
            store.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .status()
        .expect("running loadgen");
    assert!(status.success(), "loadgen --once failed: {status:?}");
    let payload = std::fs::read(&out_path).expect("reading loadgen output");
    assert_eq!(payload, offline.as_bytes());
    daemon.shutdown_clean();
}

#[test]
fn full_queue_sheds_with_overloaded() {
    // One worker, one queue slot: with the worker held by a long sleep
    // and the slot filled, every further job must shed immediately.
    let daemon = Daemon::spawn(&["--workers", "1", "--queue-capacity", "1"]);

    let addr = daemon.addr.clone();
    let hold = std::thread::spawn(move || {
        Client::connect(addr.as_str())
            .expect("connect")
            .request(&Request::Sleep { ms: 1500 })
            .expect("sleep request")
    });
    // Let the long job reach the worker.
    std::thread::sleep(Duration::from_millis(300));

    let probes: Vec<_> = (0..6)
        .map(|_| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                Client::connect(addr.as_str())
                    .expect("connect")
                    .request(&Request::Sleep { ms: 400 })
                    .expect("probe request")
            })
        })
        .collect();
    let outcomes: Vec<Response> = probes.into_iter().map(|p| p.join().unwrap()).collect();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Overloaded))
        .count();
    assert!(
        shed >= 3,
        "expected most of 6 concurrent jobs shed with a held worker and queue of 1, \
         got {shed}: {outcomes:?}"
    );
    assert!(get_u64(&daemon.stats(), "shed") >= shed as u64);
    assert!(matches!(hold.join().unwrap(), Response::Ok(_)));
    daemon.shutdown_clean();
}

#[test]
fn poisoned_job_answers_typed_error_and_daemon_survives() {
    let daemon = Daemon::spawn(&["--workers", "1"]);
    match daemon.request(&Request::Panic) {
        Response::Error(message) => {
            assert!(
                message.contains("Panic"),
                "error should carry the failure kind: {message}"
            );
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    // Same worker, next job: the fleet survived the panic.
    assert_eq!(daemon.ok(&Request::Ping), b"pong\n");
    let stats = daemon.stats();
    assert_eq!(get_u64(&stats, "failed"), 1);
    assert_eq!(get_u64(&stats, "completed"), 1);
    daemon.shutdown_clean();
}

#[test]
fn bad_requests_get_typed_errors_not_disconnects() {
    let daemon = Daemon::spawn(&[]);
    // Semantic errors: unknown store path, unknown app, unknown case.
    for request in [
        Request::Mine {
            store: "/nonexistent/corpus".into(),
            quarantine: false,
        },
        Request::Lint {
            app: "nosuchapp".into(),
            fixed: false,
        },
        Request::Slice {
            app: "forwarder".into(),
            fixed: false,
            pcs: vec![70_000],
        },
        Request::Hunt {
            case: 9,
            fixed: false,
            seed: 1,
            top_k: 3,
        },
    ] {
        match daemon.request(&request) {
            Response::Error(_) => {}
            other => panic!("expected Error for {request:?}, got {other:?}"),
        }
    }
    // A malformed request payload is answered on the same connection
    // with a retry-safe Reject (nothing ran), and the connection stays
    // usable for the next (valid) request.
    let mut client = daemon.client();
    // Craft a request frame with invalid JSON by hand.
    use sentomist::service::{read_frame, write_frame, FrameKind, Response as Resp};
    let mut stream = std::net::TcpStream::connect(daemon.addr.as_str()).unwrap();
    write_frame(&mut stream, FrameKind::Request, b"not json").unwrap();
    let frame = read_frame(&mut stream).unwrap();
    match Resp::from_frame(frame).unwrap() {
        Resp::Rejected(message) => assert!(message.contains("malformed")),
        other => panic!("expected Rejected, got {other:?}"),
    }
    write_frame(
        &mut stream,
        FrameKind::Request,
        &Request::Ping.to_bytes().unwrap(),
    )
    .unwrap();
    match Resp::from_frame(read_frame(&mut stream).unwrap()).unwrap() {
        Resp::Ok(payload) => assert_eq!(payload, b"pong\n"),
        other => panic!("connection unusable after a malformed payload: {other:?}"),
    }
    drop(stream);
    assert!(matches!(
        client.request(&Request::Ping).unwrap(),
        Response::Ok(_)
    ));
    daemon.shutdown_clean();
}

#[test]
fn lint_and_hunt_jobs_match_cli_output() {
    let daemon = Daemon::spawn(&[]);

    // Daemon lint == CLI `lint --app forwarder --json`.
    let daemon_lint = daemon.ok(&Request::Lint {
        app: "forwarder".into(),
        fixed: false,
    });
    let (cli_lint, _) = run_ok(cli().args(["lint", "--app", "forwarder", "--json"]));
    assert_eq!(daemon_lint, cli_lint.as_bytes());

    // Daemon slice == CLI `slice --app forwarder --json`, both with the
    // default (lint-flagged) seeds and with explicit --pc seeds.
    let daemon_slice = daemon.ok(&Request::Slice {
        app: "forwarder".into(),
        fixed: false,
        pcs: vec![],
    });
    let (cli_slice, _) = run_ok(cli().args(["slice", "--app", "forwarder", "--json"]));
    assert_eq!(daemon_slice, cli_slice.as_bytes());
    let daemon_slice = daemon.ok(&Request::Slice {
        app: "forwarder".into(),
        fixed: false,
        pcs: vec![5],
    });
    let (cli_slice, _) = run_ok(cli().args(["slice", "--app", "forwarder", "--pc", "5", "--json"]));
    assert_eq!(daemon_slice, cli_slice.as_bytes());

    // Daemon hunt == CLI `hunt --replay` for the same case/seed/policy.
    let daemon_hunt = daemon.ok(&Request::Hunt {
        case: 1,
        fixed: false,
        seed: 11,
        top_k: 3,
    });
    let (cli_hunt, _) =
        run_ok(cli().args(["hunt", "--replay", "--case", "1", "--seed", "11", "--json"]));
    assert_eq!(daemon_hunt, cli_hunt.as_bytes());

    daemon.shutdown_clean();
}

#[test]
fn loadgen_ramp_writes_a_bench_report() {
    let dir = workdir("service-ramp");
    let daemon = Daemon::spawn(&["--workers", "2", "--queue-capacity", "4"]);
    let bench = dir.join("BENCH_service.json");
    let status = Command::new(env!("CARGO_BIN_EXE_sentomist_loadgen"))
        .args([
            "--addr",
            &daemon.addr,
            "--job",
            "sleep",
            "--ms",
            "5",
            "--initial-rps",
            "4",
            "--increment-rps",
            "4",
            "--target-rps",
            "8",
            "--duration-per-step",
            "1",
            "--seed",
            "7",
            "--bench-out",
            bench.to_str().unwrap(),
        ])
        .status()
        .expect("running loadgen ramp");
    assert!(status.success(), "loadgen ramp failed: {status:?}");
    let report: Value =
        serde_json::from_str(&std::fs::read_to_string(&bench).expect("reading bench"))
            .expect("bench json");
    let steps = match report.get("steps") {
        Some(Value::Seq(steps)) => steps,
        other => panic!("steps is {other:?}"),
    };
    assert_eq!(steps.len(), 2, "4→8 rps by 4 is two steps");
    for step in steps {
        let requests = get_u64(step, "requests");
        assert_eq!(
            requests,
            get_u64(step, "ok") + get_u64(step, "errors") + get_u64(step, "shed"),
            "every scheduled request must be accounted for"
        );
        assert!(matches!(step.get("p50_ms"), Some(Value::F64(v)) if *v >= 0.0));
        assert!(matches!(step.get("p99_ms"), Some(Value::F64(v)) if *v >= 0.0));
    }
    assert!(report.get("max_sustainable_rps").is_some());
    daemon.shutdown_clean();
}
